//! Pre-registered metric handles for the verification pipeline.
//!
//! Every instrumented component ([`log`](crate::log),
//! [`shard`](crate::shard), [`pool`](crate::pool),
//! [`online`](crate::online), [`checker`](crate::checker)) shares one
//! [`PipelineMetrics`] bundle, created on first use. Registration is the
//! only allocating step; it happens once per process, so hot paths that
//! guard on [`vyrd_rt::metrics::enabled()`] and then update a handle stay
//! allocation-free — the property `tests/off_mode_no_alloc.rs` pins.
//!
//! Naming: `<component>.<measure>`, e.g. `log.events_appended`,
//! `pool.verdict_latency_us`. The headline derived number is the verifier
//! **lag** — `log.events_appended` minus `checker.events` at any instant —
//! which quantifies the §8 online-vs-offline tradeoff: an online verifier
//! that keeps up has a lag bounded by the in-flight buffers; a growing
//! lag means checking is slower than the program and would be better run
//! offline. `pool.lag_events` records the end-of-run value (events the
//! verifier never saw: sheds, drops, discards keep it above zero).

use std::sync::{Arc, OnceLock};

use vyrd_rt::metrics::{self, Counter, Gauge, Histogram};

/// Handles to every pipeline metric, registered once per process.
///
/// Public so exporters can force registration before taking a snapshot
/// (a metric that was never touched otherwise would be missing from it).
#[derive(Debug)]
pub struct PipelineMetrics {
    // -- EventLog (crate::log) --
    /// Events accepted into the merger (batched and unbuffered paths).
    pub log_events_appended: Arc<Counter>,
    /// Batches accepted into the merger.
    pub log_batches_submitted: Arc<Counter>,
    /// Events per accepted batch (occupancy of the [`BATCH`]-sized
    /// per-thread buffers at submit time).
    pub log_batch_occupancy: Arc<Histogram>,
    /// Batches parked on the flat-combining backlog because the merger
    /// lock was busy.
    pub log_backlog_parked: Arc<Counter>,
    /// Deepest the backlog ever got (batches).
    pub log_backlog_depth_peak: Arc<Gauge>,
    /// Most events ever parked inside the merger waiting for a
    /// sequence-gap predecessor.
    pub log_merger_parked_peak: Arc<Gauge>,
    /// Pressure-relief flushes triggered by a deep merger park.
    pub log_pressure_flushes: Arc<Counter>,
    /// Events discarded because they arrived after [`EventLog::close`].
    pub log_events_discarded: Arc<Counter>,
    /// Events dropped by the `log.append` failpoint.
    pub log_events_dropped_injected: Arc<Counter>,

    // -- ShardRouter (crate::shard) --
    /// Events fanned out to per-object shards.
    pub shard_events_routed: Arc<Counter>,
    /// Events shed (overload, abandoned shard, or injected routing drop);
    /// mirrors the [`Degradation`](crate::violation::Degradation) ledger
    /// increment-for-increment.
    pub shard_events_shed: Arc<Counter>,
    /// Sheds whose `send_timeout` waited the full shed timeout on a full
    /// channel (the checker is too slow). Disjoint from
    /// `shard_sheds_abandoned` / `shard_sheds_injected`; the three sum
    /// to `shard_events_shed`.
    pub shard_sheds_timeout: Arc<Counter>,
    /// Sheds taken without waiting because the shard was already
    /// abandoned (`Slot::Shedding` after budget exhaustion) or
    /// quarantined by the watchdog.
    pub shard_sheds_abandoned: Arc<Counter>,
    /// Sheds injected by the `shard.route` failpoint.
    pub shard_sheds_injected: Arc<Counter>,
    /// Nanoseconds each `Shed`-policy dispatch spent inside
    /// `send_timeout` — the invisible stall the append critical section
    /// pays under overload, successful sends included.
    pub shard_shed_wait_ns: Arc<Histogram>,
    /// Distinct objects the router has announced shards for.
    pub shard_objects_seen: Arc<Gauge>,
    /// Per-object batches handed to shard channels via `send_many`
    /// (batched routing mode only).
    pub shard_batch_sends: Arc<Counter>,
    /// Events per routed batch at flush time.
    pub shard_batch_occupancy: Arc<Histogram>,

    // -- VerifierPool (crate::pool) --
    /// Events consumed by per-shard checkers (summed over restarts).
    pub pool_events_checked: Arc<Counter>,
    /// Checker restarts after a caught panic.
    pub pool_restarts: Arc<Counter>,
    /// Shards abandoned (restart budget exhausted) or degraded.
    pub pool_shard_failures: Arc<Counter>,
    /// Shards checked inline during `finish_all` because no worker
    /// serviced them.
    pub pool_spawn_fallbacks: Arc<Counter>,
    /// Wall time from a shard's first check attempt to its verdict, µs.
    pub pool_verdict_latency_us: Arc<Histogram>,
    /// End-of-run verifier lag: events appended minus events checked
    /// (sheds/drops/discards keep it positive — see the module docs).
    pub pool_lag_events: Arc<Gauge>,

    // -- Adaptive overload controller (crate::overload) --
    /// Controller ticks executed.
    pub overload_ticks: Arc<Counter>,
    /// Live verification lag at the last tick: events appended minus
    /// events consumed by shard channels minus events already accounted
    /// as shed/dropped. Unlike `pool.lag_events` (end-of-run), this is
    /// sampled while the run is in flight.
    pub overload_lag_events: Arc<Gauge>,
    /// Highest live lag any tick observed.
    pub overload_lag_peak: Arc<Gauge>,
    /// Highest single-shard channel occupancy any tick observed.
    pub overload_occupancy_peak: Arc<Gauge>,
    /// Current shed timeout, ns (moves with the controller).
    pub overload_timeout_ns: Arc<Gauge>,
    /// Current shed budget (moves with the controller).
    pub overload_budget: Arc<Gauge>,
    /// Admission-tightening decisions (lag above the high watermark);
    /// mirrors the `AdaptiveAction::Decrease` ledger entries exactly.
    pub overload_decisions_decrease: Arc<Counter>,
    /// Admission-relaxing decisions (lag below the low watermark);
    /// mirrors the `AdaptiveAction::Recover` ledger entries exactly.
    pub overload_decisions_recover: Arc<Counter>,
    /// Watchdog rescues: unclaimed stuck shards handed to a freshly
    /// spawned supervised worker.
    pub overload_watchdog_rescues: Arc<Counter>,
    /// Watchdog quarantines: claimed-but-stuck shards whose future
    /// events are shed at the router.
    pub overload_watchdog_quarantines: Arc<Counter>,

    // -- Checker (crate::checker) --
    /// Events stepped by checkers (the consumption side of lag).
    pub checker_events: Arc<Counter>,
    /// Mutator commits replayed into the specification.
    pub checker_commits_applied: Arc<Counter>,
    /// Method executions fully matched (call..return).
    pub checker_methods_completed: Arc<Counter>,
    /// Observer windows checked (§4.3).
    pub checker_observers_checked: Arc<Counter>,
    /// Specification snapshots taken for observer windows.
    pub checker_snapshots_taken: Arc<Counter>,
    /// View comparisons performed (§5).
    pub checker_view_comparisons: Arc<Counter>,
    /// Individual view keys compared (full vs incremental, §6.4).
    pub checker_view_keys_compared: Arc<Counter>,
    /// Shared-variable writes replayed (view refinement).
    pub checker_writes_replayed: Arc<Counter>,
    /// Observer-window sizes in commits (§4.3): how much commit-history
    /// each observer return had to be checked against.
    pub checker_observer_window: Arc<Histogram>,
    /// Channel batches drained by `check_receiver`'s `recv_many` loop.
    pub checker_batches: Arc<Counter>,
    /// Events delivered through those batches (equals `decode.events`
    /// and the append-side event count when nothing was shed).
    pub checker_batch_events: Arc<Counter>,
    /// Events per drained consume batch.
    pub checker_batch_occupancy: Arc<Histogram>,
    /// Commit signatures re-applied to reconstruct elided window
    /// snapshots on demand.
    pub checker_snapshot_replays: Arc<Counter>,

    // -- Linearizability checking mode (Checker::lin) --
    /// Observer windows searched for a linearization witness.
    pub checker_lin_windows_searched: Arc<Counter>,
    /// Window candidates rejected during lin witness searches.
    pub checker_lin_witness_backtracks: Arc<Counter>,
    /// Lin windows resolved entirely via the fixed-ADT observation
    /// digest (no full specification snapshot consulted).
    pub checker_lin_fastpath_hits: Arc<Counter>,

    // -- Log decode (crate::codec) --
    /// Events decoded by buffered log readers.
    pub decode_events: Arc<Counter>,
    /// Payload bytes decoded (CRC frames, headers excluded).
    pub decode_bytes: Arc<Counter>,
    /// CRC frames decoded.
    pub decode_frames: Arc<Counter>,
    /// Read syscalls issued to refill the decode buffer.
    pub decode_refills: Arc<Counter>,

    // -- OnlineVerifier (crate::online) --
    /// Supervised single-stream check attempts (incl. restarts).
    pub online_checks: Arc<Counter>,

    // -- Segmented durable log (crate::segment) --
    /// Segments sealed (flushed, synced, and recorded in the manifest).
    pub segment_sealed: Arc<Counter>,
    /// Fully checked segments deleted by the continuous verifier.
    pub segment_deleted: Arc<Counter>,
    /// Checkpoints durably written by the continuous verifier.
    pub checkpoint_written: Arc<Counter>,
    /// Durable sequence number the continuous verifier resumed from
    /// (set once per [`ContinuousVerifier::open`](crate::segment::ContinuousVerifier::open)).
    pub checker_resume_seq: Arc<Gauge>,

    // -- Trace spans (crate::instrument) --
    /// Call→commit latency per method execution, ns.
    pub span_call_to_commit_ns: Arc<Histogram>,
    /// Call→return latency per method execution, ns.
    pub span_call_to_return_ns: Arc<Histogram>,
}

/// The process-global pipeline metrics, registered on first call.
///
/// First call allocates (name table entries); call it once during
/// pipeline construction or warmup, not from a measured region.
pub fn pipeline() -> &'static PipelineMetrics {
    static PIPELINE: OnceLock<PipelineMetrics> = OnceLock::new();
    PIPELINE.get_or_init(|| PipelineMetrics {
        log_events_appended: metrics::counter("log.events_appended"),
        log_batches_submitted: metrics::counter("log.batches_submitted"),
        log_batch_occupancy: metrics::histogram("log.batch_occupancy"),
        log_backlog_parked: metrics::counter("log.backlog_parked"),
        log_backlog_depth_peak: metrics::gauge("log.backlog_depth_peak"),
        log_merger_parked_peak: metrics::gauge("log.merger_parked_peak"),
        log_pressure_flushes: metrics::counter("log.pressure_flushes"),
        log_events_discarded: metrics::counter("log.events_discarded_after_close"),
        log_events_dropped_injected: metrics::counter("log.events_dropped_injected"),
        shard_events_routed: metrics::counter("shard.events_routed"),
        shard_events_shed: metrics::counter("shard.events_shed"),
        shard_sheds_timeout: metrics::counter("shard.sheds_timeout"),
        shard_sheds_abandoned: metrics::counter("shard.sheds_abandoned"),
        shard_sheds_injected: metrics::counter("shard.sheds_injected"),
        shard_shed_wait_ns: metrics::histogram("router.shed_wait_ns"),
        shard_objects_seen: metrics::gauge("shard.objects_seen"),
        shard_batch_sends: metrics::counter("shard.batch_sends"),
        shard_batch_occupancy: metrics::histogram("shard.batch_occupancy"),
        pool_events_checked: metrics::counter("pool.events_checked"),
        pool_restarts: metrics::counter("pool.restarts"),
        pool_shard_failures: metrics::counter("pool.shard_failures"),
        pool_spawn_fallbacks: metrics::counter("pool.spawn_fallbacks"),
        pool_verdict_latency_us: metrics::histogram("pool.verdict_latency_us"),
        pool_lag_events: metrics::gauge("pool.lag_events"),
        overload_ticks: metrics::counter("overload.ticks"),
        overload_lag_events: metrics::gauge("overload.lag_events"),
        overload_lag_peak: metrics::gauge("overload.lag_peak"),
        overload_occupancy_peak: metrics::gauge("overload.occupancy_peak"),
        overload_timeout_ns: metrics::gauge("overload.timeout_ns"),
        overload_budget: metrics::gauge("overload.budget"),
        overload_decisions_decrease: metrics::counter("overload.decisions_decrease"),
        overload_decisions_recover: metrics::counter("overload.decisions_recover"),
        overload_watchdog_rescues: metrics::counter("overload.watchdog_rescues"),
        overload_watchdog_quarantines: metrics::counter("overload.watchdog_quarantines"),
        checker_events: metrics::counter("checker.events"),
        checker_commits_applied: metrics::counter("checker.commits_applied"),
        checker_methods_completed: metrics::counter("checker.methods_completed"),
        checker_observers_checked: metrics::counter("checker.observers_checked"),
        checker_snapshots_taken: metrics::counter("checker.snapshots_taken"),
        checker_view_comparisons: metrics::counter("checker.view_comparisons"),
        checker_view_keys_compared: metrics::counter("checker.view_keys_compared"),
        checker_writes_replayed: metrics::counter("checker.writes_replayed"),
        checker_observer_window: metrics::histogram("checker.observer_window"),
        checker_batches: metrics::counter("checker.batches"),
        checker_batch_events: metrics::counter("checker.batch_events"),
        checker_batch_occupancy: metrics::histogram("checker.batch_occupancy"),
        checker_snapshot_replays: metrics::counter("checker.snapshot_replays"),
        checker_lin_windows_searched: metrics::counter("lin.windows_searched"),
        checker_lin_witness_backtracks: metrics::counter("lin.witness_backtracks"),
        checker_lin_fastpath_hits: metrics::counter("lin.fastpath_hits"),
        decode_events: metrics::counter("decode.events"),
        decode_bytes: metrics::counter("decode.bytes"),
        decode_frames: metrics::counter("decode.frames"),
        decode_refills: metrics::counter("decode.refills"),
        online_checks: metrics::counter("online.checks"),
        segment_sealed: metrics::counter("segment.sealed"),
        segment_deleted: metrics::counter("segment.deleted"),
        checkpoint_written: metrics::counter("checkpoint.written"),
        checker_resume_seq: metrics::gauge("checker.resume_seq"),
        span_call_to_commit_ns: metrics::histogram("span.call_to_commit_ns"),
        span_call_to_return_ns: metrics::histogram("span.call_to_return_ns"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_registers_once_and_names_resolve() {
        let pm = pipeline();
        assert!(std::ptr::eq(pm, pipeline()));
        // The registry hands back the same cells by name.
        assert!(Arc::ptr_eq(
            &pm.log_events_appended,
            &metrics::counter("log.events_appended")
        ));
        assert!(Arc::ptr_eq(
            &pm.pool_lag_events,
            &metrics::gauge("pool.lag_events")
        ));
        assert!(Arc::ptr_eq(
            &pm.pool_verdict_latency_us,
            &metrics::histogram("pool.verdict_latency_us")
        ));
    }
}
