//! Durable segmented log and checkpointed continuous verification.
//!
//! The in-memory [`EventLog`](crate::log::EventLog) retains every event
//! until the run ends, so a long-running program grows its log without
//! bound. This module spills the log to disk instead and checks it as it
//! grows, keeping *both* the resident memory and the on-disk footprint
//! bounded:
//!
//! 1. **Spilling** — [`EventLog::to_segments`](crate::log::EventLog::to_segments)
//!    forwards every merged run to a background writer thread which
//!    appends the events, in global order, to file-backed *segments*:
//!    each segment is an independent stream in the [`codec`](crate::codec)
//!    wire format (header + CRC'd frames), named after the *durable
//!    sequence number* of its first event. When a segment reaches the
//!    configured byte budget it is **sealed**: flushed, fsynced, and
//!    recorded in an append-only manifest.
//! 2. **Checking** — a [`ContinuousVerifier`] consumes sealed segments
//!    strictly in sequence order, feeding the events to per-object
//!    checkpointable checkers. Every few segments it serializes the full
//!    checker state (specification snapshot, in-flight executions,
//!    [`Degradation`](crate::violation::Degradation) ledger, resume
//!    position) into a [`checkpoint`] file and then **deletes** the
//!    segments the checkpoint covers.
//! 3. **Recovery** — after a crash, [`ContinuousVerifier::open`] resumes
//!    from the newest readable checkpoint; the torn tail of the segment
//!    directory is recovered with
//!    [`read_log_recovering`](crate::codec::read_log_recovering) and any
//!    discarded bytes are charged to the degradation ledger, so a crash
//!    can downgrade a verdict to a degraded pass but never forge a clean
//!    one.
//!
//! The durable sequence numbers are assigned by the writer thread —
//! 0, 1, 2, … in delivery order — and are dense even when the in-memory
//! log's internal sequence had gaps (e.g. close-time jumps), so "the
//! first unchecked event" is always a single integer and segment files
//! tile the history without overlap.

pub mod checkpoint;
pub mod continuous;

use std::fs::{self, File, OpenOptions};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::thread::JoinHandle;

use vyrd_rt::channel::{self, Receiver, Sender};
use vyrd_rt::sync::Mutex;

use crate::codec;
use crate::event::Event;
use crate::log::LogMode;
use crate::metrics::pipeline;

pub use checkpoint::{Checkpoint, CHECKPOINT_VERSION};
pub use continuous::{
    ContinuousOptions, ContinuousVerifier, SteppingChecker, SteppingFactory, StepProgress,
};

use std::sync::Arc;

/// File name extension of segment files.
const SEGMENT_SUFFIX: &str = ".vyl";
/// File name prefix of segment files.
const SEGMENT_PREFIX: &str = "seg-";
/// The manifest's file name inside the segment directory.
const MANIFEST_NAME: &str = "manifest.log";
/// First line of a manifest file.
const MANIFEST_HEADER: &str = "vyrd-segment-manifest v1";

/// Configuration of a segment directory writer.
#[derive(Clone, Debug)]
pub struct SegmentConfig {
    /// Directory the segments, manifest, and checkpoints live in
    /// (created if missing).
    pub dir: PathBuf,
    /// Rotation budget: a segment is sealed once its encoded size
    /// (header + frames) reaches this many bytes.
    pub segment_bytes: u64,
}

impl SegmentConfig {
    /// Configuration with the default 64 KiB rotation budget.
    pub fn new<P: Into<PathBuf>>(dir: P) -> SegmentConfig {
        SegmentConfig {
            dir: dir.into(),
            segment_bytes: 64 * 1024,
        }
    }

    /// Replaces the rotation budget (clamped to at least 1).
    pub fn segment_bytes(mut self, bytes: u64) -> SegmentConfig {
        self.segment_bytes = bytes.max(1);
        self
    }
}

/// End-of-run accounting returned by [`SegmentLogHandle::finish`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SegmentWriterSummary {
    /// Segments sealed (including the final partial one).
    pub segments_sealed: u64,
    /// Events durably framed.
    pub events: u64,
    /// Bytes written across all segments (headers + frames).
    pub bytes: u64,
    /// The next durable sequence number (equals `events`).
    pub next_seq: u64,
}

/// File name of the segment whose first event has durable sequence
/// number `first_seq`, e.g. `seg-0000000000000042.vyl`.
pub fn segment_file_name(first_seq: u64) -> String {
    format!("{SEGMENT_PREFIX}{first_seq:016}{SEGMENT_SUFFIX}")
}

/// Inverse of [`segment_file_name`]; `None` for foreign files.
pub fn parse_segment_file_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix(SEGMENT_PREFIX)?.strip_suffix(SEGMENT_SUFFIX)?;
    if digits.len() != 16 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// One segment file found in a segment directory.
#[derive(Clone, Debug)]
pub struct ScannedSegment {
    /// Path of the segment file.
    pub path: PathBuf,
    /// Durable sequence number of the segment's first event.
    pub first_seq: u64,
    /// Event count recorded in the manifest — `Some` for sealed
    /// segments, `None` for the unsealed tail (the segment that was
    /// open when the writer stopped or the process died).
    pub sealed_events: Option<u64>,
}

impl ScannedSegment {
    /// For sealed segments, the durable sequence number one past the
    /// segment's last event.
    pub fn end_seq(&self) -> Option<u64> {
        self.sealed_events.map(|n| self.first_seq + n)
    }
}

/// Lists the segment files of `dir` in sequence order, joining each with
/// its manifest entry (if sealed).
///
/// Manifest entries whose files were already deleted by the continuous
/// verifier are not reported — the checkpoint's resume position covers
/// them. A torn final manifest line (crash mid-append) is skipped; its
/// segment then shows up as an unsealed tail, which recovery handles.
///
/// # Errors
///
/// Propagates directory-listing I/O errors. A missing directory yields
/// an empty list.
pub fn scan_segments(dir: &Path) -> io::Result<Vec<ScannedSegment>> {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let manifest = read_manifest(dir)?;
    let mut segments = Vec::new();
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(first_seq) = parse_segment_file_name(name) else {
            continue;
        };
        segments.push(ScannedSegment {
            path: entry.path(),
            first_seq,
            sealed_events: manifest
                .iter()
                .find(|(first, _)| *first == first_seq)
                .map(|(_, events)| *events),
        });
    }
    segments.sort_by_key(|s| s.first_seq);
    Ok(segments)
}

/// Parses the manifest into `(first_seq, events)` entries, skipping
/// damaged lines. A missing manifest yields an empty list.
fn read_manifest(dir: &Path) -> io::Result<Vec<(u64, u64)>> {
    let file = match File::open(dir.join(MANIFEST_NAME)) {
        Ok(file) => file,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut entries = Vec::new();
    for line in BufReader::new(file).lines() {
        let line = line?;
        let mut fields = line.split_ascii_whitespace();
        let (Some(name), Some(first), Some(events), None) =
            (fields.next(), fields.next(), fields.next(), fields.next())
        else {
            continue; // header, blank, or torn line
        };
        let (Some(named), Ok(first), Ok(events)) =
            (parse_segment_file_name(name), first.parse(), events.parse())
        else {
            continue;
        };
        if named == first {
            entries.push((first, events));
        }
    }
    Ok(entries)
}

/// Messages from [`SegmentLogHandle`]s (and the log's sink) to the
/// writer thread.
enum WriterMsg {
    /// A merged run of events, already in global order.
    Run(Vec<Event>),
    /// Flush buffered frames to the OS; reply when durable.
    Flush(Sender<io::Result<()>>),
    /// Seal the open segment and reply with the final accounting; the
    /// thread exits afterwards.
    Finish(Sender<io::Result<SegmentWriterSummary>>),
}

/// Handle to the background segment writer thread.
///
/// Cloneable; the log's sink holds one clone and the caller of
/// [`EventLog::to_segments`](crate::log::EventLog::to_segments) another.
/// Call [`SegmentLogHandle::finish`] **after**
/// [`EventLog::close`](crate::log::EventLog::close) so every appended
/// event has been delivered; it seals the open segment and joins the
/// thread. If the handle is simply dropped the thread still seals and
/// exits once every clone (including the sink's) is gone, but errors go
/// unreported.
#[derive(Clone)]
pub struct SegmentLogHandle {
    sender: Sender<WriterMsg>,
    thread: Arc<Mutex<Option<JoinHandle<()>>>>,
}

impl std::fmt::Debug for SegmentLogHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentLogHandle").finish_non_exhaustive()
    }
}

impl SegmentLogHandle {
    /// Creates the segment directory (and manifest, if new) and spawns
    /// the writer thread.
    pub(crate) fn spawn(mode: LogMode, config: SegmentConfig) -> io::Result<SegmentLogHandle> {
        fs::create_dir_all(&config.dir)?;
        let manifest_path = config.dir.join(MANIFEST_NAME);
        let mut manifest = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&manifest_path)?;
        if manifest.metadata()?.len() == 0 {
            writeln!(manifest, "{MANIFEST_HEADER}")?;
            manifest.flush()?;
        }
        let (sender, receiver) = channel::unbounded();
        let mut writer = Writer {
            dir: config.dir,
            mode,
            budget: config.segment_bytes.max(1),
            manifest,
            current: None,
            scratch: Vec::with_capacity(64),
            next_seq: 0,
            bytes_total: 0,
            segments_sealed: 0,
            error: None,
        };
        let thread = std::thread::Builder::new()
            .name("vyrd-segment-writer".into())
            .spawn(move || writer.run(receiver))?;
        Ok(SegmentLogHandle {
            sender,
            thread: Arc::new(Mutex::new(Some(thread))),
        })
    }

    /// Hands a merged run to the writer. Events sent after
    /// [`SegmentLogHandle::finish`] are dropped.
    pub(crate) fn append(&self, run: Vec<Event>) {
        if !run.is_empty() {
            let _ = self.sender.send(WriterMsg::Run(run));
        }
    }

    /// Flushes buffered frames to the operating system and waits for the
    /// writer to confirm, reporting any write error the writer has hit
    /// so far.
    ///
    /// # Errors
    ///
    /// Returns the writer's sticky I/O error, or an error if the writer
    /// thread has already finished.
    pub fn flush_sync(&self) -> io::Result<()> {
        let (ack, done) = channel::unbounded();
        if self.sender.send(WriterMsg::Flush(ack)).is_err() {
            return Err(writer_gone());
        }
        done.recv().map_err(|_| writer_gone())?
    }

    /// Seals the open segment, stops the writer thread, and returns the
    /// final accounting. Call after
    /// [`EventLog::close`](crate::log::EventLog::close).
    ///
    /// # Errors
    ///
    /// Returns the writer's sticky I/O error (the thread still exits),
    /// or an error if the writer already finished.
    pub fn finish(&self) -> io::Result<SegmentWriterSummary> {
        let (ack, done) = channel::unbounded();
        if self.sender.send(WriterMsg::Finish(ack)).is_err() {
            return Err(writer_gone());
        }
        let summary = done.recv().map_err(|_| writer_gone())?;
        if let Some(thread) = self.thread.lock().take() {
            let _ = thread.join();
        }
        summary
    }
}

fn writer_gone() -> io::Error {
    io::Error::other("segment writer thread already finished")
}

/// The open (not yet sealed) segment.
struct OpenSegment {
    file: BufWriter<File>,
    first_seq: u64,
    events: u64,
    bytes: u64,
}

/// State owned by the writer thread.
struct Writer {
    dir: PathBuf,
    mode: LogMode,
    budget: u64,
    manifest: File,
    current: Option<OpenSegment>,
    scratch: Vec<u8>,
    /// Durable sequence number of the next event to arrive.
    next_seq: u64,
    bytes_total: u64,
    segments_sealed: u64,
    /// Sticky first error: once set, later events are dropped and every
    /// flush/finish reports it.
    error: Option<io::Error>,
}

impl Writer {
    fn run(&mut self, receiver: Receiver<WriterMsg>) {
        loop {
            match receiver.recv() {
                Ok(WriterMsg::Run(run)) => self.append_run(run),
                Ok(WriterMsg::Flush(ack)) => {
                    let _ = ack.send(self.flush());
                }
                Ok(WriterMsg::Finish(ack)) => {
                    let result = self.seal().map(|()| SegmentWriterSummary {
                        segments_sealed: self.segments_sealed,
                        events: self.next_seq,
                        bytes: self.bytes_total,
                        next_seq: self.next_seq,
                    });
                    let _ = ack.send(result);
                    return;
                }
                // Every handle (and the log's sink) is gone: seal what we
                // have and exit.
                Err(_) => {
                    let _ = self.seal();
                    return;
                }
            }
        }
    }

    fn append_run(&mut self, run: Vec<Event>) {
        for event in run {
            if self.error.is_some() {
                return;
            }
            if let Err(e) = self.append_event(&event) {
                self.error = Some(e);
                return;
            }
        }
    }

    fn append_event(&mut self, event: &Event) -> io::Result<()> {
        if self.current.is_none() {
            let first_seq = self.next_seq;
            let path = self.dir.join(segment_file_name(first_seq));
            let mut file = BufWriter::new(File::create(path)?);
            codec::write_header(&mut file, self.mode)?;
            self.current = Some(OpenSegment {
                file,
                first_seq,
                events: 0,
                bytes: codec::HEADER_LEN,
            });
        }
        // `current` was just ensured above.
        let Some(seg) = self.current.as_mut() else {
            return Ok(());
        };
        codec::write_frame_with(&mut seg.file, &mut self.scratch, event)?;
        seg.bytes += 8 + self.scratch.len() as u64;
        seg.events += 1;
        self.next_seq += 1;
        if seg.bytes >= self.budget {
            self.seal()?;
        }
        Ok(())
    }

    /// Seals the open segment: flush, fsync, manifest entry. No-op when
    /// no segment is open.
    fn seal(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let Some(mut seg) = self.current.take() else {
            return Ok(());
        };
        seg.file.flush()?;
        seg.file.get_ref().sync_all()?;
        writeln!(
            self.manifest,
            "{} {} {}",
            segment_file_name(seg.first_seq),
            seg.first_seq,
            seg.events
        )?;
        self.manifest.flush()?;
        self.manifest.sync_all()?;
        self.bytes_total += seg.bytes;
        self.segments_sealed += 1;
        if vyrd_rt::metrics::enabled() {
            pipeline().segment_sealed.inc();
        }
        Ok(())
    }

    /// Flushes the open segment's buffered frames to the OS (no fsync,
    /// no seal).
    fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = &self.error {
            return Err(io::Error::new(e.kind(), e.to_string()));
        }
        match self.current.as_mut() {
            Some(seg) => seg.file.flush(),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{MethodId, ThreadId};
    use crate::value::Value;

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("vyrd-{tag}-{}", std::process::id()))
    }

    fn call(i: i64) -> Event {
        Event::Call {
            tid: ThreadId(0),
            object: crate::event::ObjectId(0),
            method: MethodId::from("M"),
            args: crate::event::ArgList::from_slice(&[Value::from(i)]),
        }
    }

    #[test]
    fn file_names_round_trip() {
        assert_eq!(segment_file_name(42), "seg-0000000000000042.vyl");
        assert_eq!(parse_segment_file_name("seg-0000000000000042.vyl"), Some(42));
        assert_eq!(parse_segment_file_name("seg-42.vyl"), None);
        assert_eq!(parse_segment_file_name("checkpoint-0.vyc"), None);
        assert_eq!(parse_segment_file_name("seg-00000000000000xx.vyl"), None);
    }

    #[test]
    fn writer_rotates_seals_and_records_the_manifest() {
        let dir = temp_dir("segment-rotate");
        let handle = SegmentLogHandle::spawn(
            LogMode::Io,
            SegmentConfig::new(&dir).segment_bytes(64),
        )
        .unwrap();
        handle.append((0..20).map(call).collect());
        handle.flush_sync().unwrap();
        let summary = handle.finish().unwrap();
        assert_eq!(summary.events, 20);
        assert_eq!(summary.next_seq, 20);
        assert!(summary.segments_sealed >= 2, "{summary:?}");

        let segments = scan_segments(&dir).unwrap();
        assert_eq!(segments.len() as u64, summary.segments_sealed);
        // Sealed segments tile the sequence space without gaps.
        let mut next = 0;
        for seg in &segments {
            assert_eq!(seg.first_seq, next);
            let events = seg.sealed_events.expect("all segments sealed");
            assert!(events > 0);
            next += events;
        }
        assert_eq!(next, 20);
        // Each segment is an independently decodable stream.
        let first = std::fs::read(&segments[0].path).unwrap();
        let decoded = codec::read_log(&mut &first[..]).unwrap();
        assert_eq!(decoded.len() as u64, segments[0].sealed_events.unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn finish_twice_reports_writer_gone() {
        let dir = temp_dir("segment-finish-twice");
        let handle =
            SegmentLogHandle::spawn(LogMode::Io, SegmentConfig::new(&dir)).unwrap();
        handle.finish().unwrap();
        assert!(handle.finish().is_err());
        assert!(handle.flush_sync().is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_manifest_line_is_skipped() {
        let dir = temp_dir("segment-torn-manifest");
        let handle = SegmentLogHandle::spawn(
            LogMode::Io,
            SegmentConfig::new(&dir).segment_bytes(1),
        )
        .unwrap();
        handle.append(vec![call(1), call(2)]);
        handle.finish().unwrap();
        // Tear the final manifest line mid-entry.
        let path = dir.join(MANIFEST_NAME);
        let text = std::fs::read_to_string(&path).unwrap();
        let torn = &text[..text.len() - 4];
        std::fs::write(&path, torn).unwrap();
        let segments = scan_segments(&dir).unwrap();
        assert_eq!(segments.len(), 2);
        assert!(segments[0].sealed_events.is_some());
        // The torn entry's segment is now an unsealed tail candidate.
        assert_eq!(segments[1].sealed_events, None);
        std::fs::remove_dir_all(&dir).ok();
    }
}
