//! Checkpoint files: durable snapshots of the continuous verifier.
//!
//! A checkpoint captures everything the [`ContinuousVerifier`]
//! (super::continuous) needs to resume after a crash without re-reading
//! the segments it has already checked:
//!
//! * `next_seq` — the durable sequence number of the first *unchecked*
//!   event (every segment entirely below it may be deleted),
//! * one serialized checker state per object
//!   ([`Checker::save_state`](crate::checker::Checker::save_state)),
//! * the accumulated [`Degradation`] ledger.
//!
//! ## File format
//!
//! `checkpoint-{next_seq:016}.vyc`, written to a temporary file, fsynced,
//! and renamed into place so a crash mid-write can never leave a
//! half-written file under a checkpoint name:
//!
//! ```text
//! "VYCK"  magic            (4 bytes)
//! u32     CHECKPOINT_VERSION
//! u32     payload length
//! u32     CRC-32 of the payload
//! payload a single codec Value (see below)
//! ```
//!
//! The payload rides the [`codec`](crate::codec) `Value` wire format:
//! `[next_seq, degradation, [(object, state), …]]`. The two newest
//! checkpoints are retained; recovery falls back to the older one when
//! the newest is unreadable.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::codec::{self, crc32};
use crate::event::ObjectId;
use crate::metrics::pipeline;
use crate::value::Value;
use crate::violation::{Degradation, ShardFailure};

/// Magic bytes opening every checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"VYCK";

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// File name extension of checkpoint files.
const CHECKPOINT_SUFFIX: &str = ".vyc";
/// File name prefix of checkpoint files.
const CHECKPOINT_PREFIX: &str = "checkpoint-";
/// Scratch name a checkpoint is written under before the atomic rename.
const CHECKPOINT_TMP: &str = "checkpoint.tmp";

/// A continuous-verifier snapshot: resume position, per-object checker
/// states, and lost-coverage accounting.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Durable sequence number of the first event *not* covered by
    /// `states` — checking resumes here.
    pub next_seq: u64,
    /// Serialized checker state per object, in object order.
    pub states: Vec<(ObjectId, Value)>,
    /// Degradation accumulated so far (including torn bytes discarded by
    /// earlier recoveries).
    pub degradation: Degradation,
}

/// File name of the checkpoint taken at `next_seq`.
pub fn checkpoint_file_name(next_seq: u64) -> String {
    format!("{CHECKPOINT_PREFIX}{next_seq:016}{CHECKPOINT_SUFFIX}")
}

/// Inverse of [`checkpoint_file_name`]; `None` for foreign files.
pub fn parse_checkpoint_file_name(name: &str) -> Option<u64> {
    let digits = name
        .strip_prefix(CHECKPOINT_PREFIX)?
        .strip_suffix(CHECKPOINT_SUFFIX)?;
    if digits.len() != 16 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Lists the checkpoint files of `dir`, **newest first** (highest
/// `next_seq`). A missing directory yields an empty list.
///
/// # Errors
///
/// Propagates directory-listing I/O errors.
pub fn list_checkpoints(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut found = Vec::new();
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(next_seq) = parse_checkpoint_file_name(name) {
            found.push((next_seq, entry.path()));
        }
    }
    found.sort_by_key(|(next_seq, _)| std::cmp::Reverse(*next_seq));
    Ok(found.into_iter().map(|(_, path)| path).collect())
}

/// Atomically writes `checkpoint` into `dir` and prunes all but the two
/// newest checkpoint files.
///
/// # Errors
///
/// Propagates I/O errors; on error the previous checkpoints are intact.
pub fn write_checkpoint(dir: &Path, checkpoint: &Checkpoint) -> io::Result<PathBuf> {
    let mut payload = Vec::with_capacity(256);
    codec::write_value(&mut payload, &checkpoint_value(checkpoint))?;
    let tmp = dir.join(CHECKPOINT_TMP);
    {
        let mut file = File::create(&tmp)?;
        file.write_all(&CHECKPOINT_MAGIC)?;
        file.write_all(&CHECKPOINT_VERSION.to_le_bytes())?;
        file.write_all(&(payload.len() as u32).to_le_bytes())?;
        file.write_all(&crc32(&payload).to_le_bytes())?;
        file.write_all(&payload)?;
        file.sync_all()?;
    }
    let path = dir.join(checkpoint_file_name(checkpoint.next_seq));
    fs::rename(&tmp, &path)?;
    // Directory metadata (the rename and any prunes) is best-effort
    // synced; data durability came from the sync_all above.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    for old in list_checkpoints(dir)?.into_iter().skip(2) {
        let _ = fs::remove_file(old);
    }
    if vyrd_rt::metrics::enabled() {
        pipeline().checkpoint_written.inc();
    }
    Ok(path)
}

/// Reads and validates one checkpoint file.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] on bad magic, version, length, CRC, or
/// payload shape; plain I/O errors otherwise.
pub fn read_checkpoint(path: &Path) -> io::Result<Checkpoint> {
    let bytes = fs::read(path)?;
    let header = 4 + 4 + 4 + 4;
    if bytes.len() < header {
        return Err(malformed("checkpoint file shorter than its header"));
    }
    if bytes[..4] != CHECKPOINT_MAGIC {
        return Err(malformed("not a vyrd checkpoint (bad magic)"));
    }
    let version = u32_at(&bytes, 4);
    if version != CHECKPOINT_VERSION {
        return Err(malformed(format!(
            "unsupported checkpoint version {version}"
        )));
    }
    let len = u32_at(&bytes, 8) as usize;
    let crc = u32_at(&bytes, 12);
    let payload = bytes
        .get(header..)
        .filter(|p| p.len() == len)
        .ok_or_else(|| malformed("checkpoint payload length mismatch"))?;
    if crc32(payload) != crc {
        return Err(malformed("checkpoint payload CRC mismatch"));
    }
    let mut cursor = payload;
    let value = codec::read_value(&mut cursor)?;
    if !cursor.is_empty() {
        return Err(malformed("trailing bytes after checkpoint payload"));
    }
    value_checkpoint(&value)
}

/// Loads the newest checkpoint whose file decodes and validates,
/// silently skipping damaged ones. `Ok(None)` when no usable checkpoint
/// exists.
///
/// # Errors
///
/// Propagates directory-listing I/O errors (per-file damage is a
/// fallback, not an error).
pub fn load_latest_checkpoint(dir: &Path) -> io::Result<Option<Checkpoint>> {
    for path in list_checkpoints(dir)? {
        if let Ok(checkpoint) = read_checkpoint(&path) {
            return Ok(Some(checkpoint));
        }
    }
    Ok(None)
}

fn u32_at(bytes: &[u8], offset: usize) -> u32 {
    let mut buf = [0u8; 4];
    buf.copy_from_slice(&bytes[offset..offset + 4]);
    u32::from_le_bytes(buf)
}

fn malformed<E: Into<String>>(detail: E) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail.into())
}

// ---- Value encoding ---------------------------------------------------

fn value_u64(value: &Value) -> io::Result<u64> {
    value
        .as_int()
        .and_then(|i| u64::try_from(i).ok())
        .ok_or_else(|| malformed("expected a non-negative integer"))
}

fn value_list(value: &Value) -> io::Result<&[Value]> {
    value.as_list().ok_or_else(|| malformed("expected a list"))
}

fn checkpoint_value(checkpoint: &Checkpoint) -> Value {
    let states = checkpoint
        .states
        .iter()
        .map(|(object, state)| Value::pair(Value::Int(i64::from(object.0)), state.clone()))
        .collect();
    Value::List(vec![
        // next_seq fits i64 for any run this side of the heat death.
        Value::Int(checkpoint.next_seq.min(i64::MAX as u64) as i64),
        degradation_value(&checkpoint.degradation),
        Value::List(states),
    ])
}

fn value_checkpoint(value: &Value) -> io::Result<Checkpoint> {
    let fields = value_list(value)?;
    let [next_seq, degradation, states] = fields else {
        return Err(malformed("checkpoint payload must have three fields"));
    };
    let mut parsed_states = Vec::new();
    for entry in value_list(states)? {
        let (object, state) = match entry {
            Value::Pair(p) => (&p.0, &p.1),
            _ => return Err(malformed("checker state entry must be a pair")),
        };
        let object = object
            .as_int()
            .and_then(|i| u32::try_from(i).ok())
            .ok_or_else(|| malformed("checker state object id must be a u32"))?;
        parsed_states.push((ObjectId(object), state.clone()));
    }
    Ok(Checkpoint {
        next_seq: value_u64(next_seq)?,
        degradation: value_degradation(degradation)?,
        states: parsed_states,
    })
}

fn degradation_value(d: &Degradation) -> Value {
    let sheds = d
        .sheds_by_object
        .iter()
        .map(|(object, n)| {
            Value::pair(
                Value::Int(i64::from(object.0)),
                Value::Int(*n as i64),
            )
        })
        .collect();
    let failures = d
        .shard_failures
        .iter()
        .map(|f| {
            Value::List(vec![
                Value::Int(i64::from(f.object.0)),
                Value::Str(f.panic_msg.clone()),
                Value::Int(f.events_lost as i64),
                Value::Int(i64::from(f.restarts)),
            ])
        })
        .collect();
    Value::List(vec![
        Value::List(sheds),
        Value::Int(d.events_lost as i64),
        Value::Int(d.restarts as i64),
        Value::List(failures),
        Value::Int(d.spawn_fallbacks as i64),
        Value::Int(d.lost_workers as i64),
        Value::Int(d.torn_bytes_discarded as i64),
    ])
}

fn value_degradation(value: &Value) -> io::Result<Degradation> {
    let fields = value_list(value)?;
    let [sheds, events_lost, restarts, failures, spawn_fallbacks, lost_workers, torn] = fields
    else {
        return Err(malformed("degradation record must have seven fields"));
    };
    let mut sheds_by_object = Vec::new();
    for entry in value_list(sheds)? {
        let Value::Pair(p) = entry else {
            return Err(malformed("shed entry must be a pair"));
        };
        let object = p
            .0
            .as_int()
            .and_then(|i| u32::try_from(i).ok())
            .ok_or_else(|| malformed("shed object id must be a u32"))?;
        sheds_by_object.push((ObjectId(object), value_u64(&p.1)?));
    }
    let mut shard_failures = Vec::new();
    for entry in value_list(failures)? {
        let [object, panic_msg, lost, restarts] = value_list(entry)? else {
            return Err(malformed("shard failure must have four fields"));
        };
        let object = object
            .as_int()
            .and_then(|i| u32::try_from(i).ok())
            .ok_or_else(|| malformed("shard failure object id must be a u32"))?;
        shard_failures.push(ShardFailure {
            object: ObjectId(object),
            panic_msg: panic_msg
                .as_str()
                .ok_or_else(|| malformed("shard failure panic message must be a string"))?
                .to_owned(),
            events_lost: value_u64(lost)?,
            restarts: value_u64(restarts)?
                .try_into()
                .map_err(|_| malformed("shard failure restart count overflows u32"))?,
        });
    }
    Ok(Degradation {
        sheds_by_object,
        events_lost: value_u64(events_lost)?,
        restarts: value_u64(restarts)?,
        shard_failures,
        spawn_fallbacks: value_u64(spawn_fallbacks)?,
        lost_workers: value_u64(lost_workers)?,
        torn_bytes_discarded: value_u64(torn)?,
        // The adaptive-overload ledger (shed windows, controller
        // decisions, watchdog events) belongs to the in-process pool
        // path; the continuous verifier never produces it, so the
        // checkpoint format stays at seven fields.
        ..Degradation::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vyrd-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> Checkpoint {
        Checkpoint {
            next_seq: 1234,
            states: vec![
                (ObjectId(0), Value::List(vec![Value::Int(7)])),
                (ObjectId(3), Value::Str("state".into())),
            ],
            degradation: Degradation {
                sheds_by_object: vec![(ObjectId(1), 5)],
                events_lost: 2,
                restarts: 1,
                shard_failures: vec![ShardFailure {
                    object: ObjectId(1),
                    panic_msg: "boom".into(),
                    events_lost: 2,
                    restarts: 1,
                }],
                spawn_fallbacks: 4,
                lost_workers: 0,
                torn_bytes_discarded: 17,
                ..Degradation::default()
            },
        }
    }

    #[test]
    fn round_trips_through_the_file_format() {
        let dir = temp_dir("checkpoint-roundtrip");
        let path = write_checkpoint(&dir, &sample()).unwrap();
        assert_eq!(
            path.file_name().unwrap().to_str().unwrap(),
            "checkpoint-0000000000001234.vyc"
        );
        let back = read_checkpoint(&path).unwrap();
        let original = sample();
        assert_eq!(back.next_seq, original.next_seq);
        assert_eq!(back.states, original.states);
        assert_eq!(back.degradation, original.degradation);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn keeps_only_the_two_newest_checkpoints() {
        let dir = temp_dir("checkpoint-prune");
        for next_seq in [10, 20, 30] {
            let mut cp = sample();
            cp.next_seq = next_seq;
            write_checkpoint(&dir, &cp).unwrap();
        }
        let found = list_checkpoints(&dir).unwrap();
        assert_eq!(found.len(), 2);
        let latest = load_latest_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(latest.next_seq, 30);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_newest_falls_back_to_the_previous_checkpoint() {
        let dir = temp_dir("checkpoint-fallback");
        let mut cp = sample();
        cp.next_seq = 10;
        write_checkpoint(&dir, &cp).unwrap();
        cp.next_seq = 20;
        let newest = write_checkpoint(&dir, &cp).unwrap();
        // Flip a payload byte: the CRC check must reject the file.
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&newest, &bytes).unwrap();
        assert!(read_checkpoint(&newest).is_err());
        let recovered = load_latest_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(recovered.next_seq, 10);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let dir = temp_dir("checkpoint-magic");
        let path = dir.join(checkpoint_file_name(0));
        fs::write(&path, b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00").unwrap();
        assert!(read_checkpoint(&path).is_err());
        assert!(load_latest_checkpoint(&dir).unwrap().is_none());
        fs::remove_dir_all(&dir).ok();
    }
}
