//! The continuous verifier: checks a segment directory as it grows,
//! checkpointing its state and deleting fully-checked segments.
//!
//! [`ContinuousVerifier`] is the consumer half of the segmented log
//! (see the [module docs](super)). It is single-threaded and driven by
//! polling: each [`ContinuousVerifier::step`] call checks every segment
//! the manifest has sealed since the last call, in strict durable-
//! sequence order; [`ContinuousVerifier::finalize`] additionally
//! recovers the unsealed tail (legitimately torn after a crash) and
//! folds the per-object reports into one merged
//! [`Report`](crate::violation::Report), exactly like
//! [`VerifierPool::finish_all`](crate::pool::VerifierPool::finish_all).
//!
//! Crash-recovery invariants:
//!
//! * **Checkpoint-then-delete** — a segment is deleted only after a
//!   checkpoint with `next_seq` past its end was fsynced and renamed
//!   into place, so the union of (newest readable checkpoint, surviving
//!   segments) always covers the durable history.
//! * **Torn data degrades, never forges** — bytes discarded while
//!   recovering the tail, sealed segments that decode short, and holes
//!   left by missing files are charged to the
//!   [`Degradation`](crate::violation::Degradation) ledger, so the final
//!   verdict can be a degraded pass but never a clean `PASS` over a
//!   damaged history.
//! * **Strict order** — events past a hole or a damaged segment are
//!   never fed to a checker (their prefix context is gone); they are
//!   counted as lost instead.

use std::collections::BTreeMap;
use std::fs::{self, File};
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

use crate::checker::state::StateError;
use crate::checker::Checker;
use crate::codec::{self, DecodeOutcome};
use crate::event::{Event, ObjectId};
use crate::metrics::pipeline;
use crate::replay::Replayer;
use crate::spec::Spec;
use crate::value::Value;
use crate::violation::{Degradation, Report};

use super::checkpoint::{self, Checkpoint};
use super::{scan_segments, ScannedSegment};

/// A checker that can be fed one event at a time and serialized between
/// events — what the continuous verifier needs from
/// [`Checker`](crate::checker::Checker), object-safe so checkers over
/// different specifications can share a map.
pub trait SteppingChecker: Send {
    /// Feeds the next event of this object's subsequence.
    fn feed(&mut self, event: Event);
    /// `true` once a violation was found.
    fn violation_found(&self) -> bool;
    /// Serializes the full checker state (see
    /// [`Checker::save_state`](crate::checker::Checker::save_state)).
    ///
    /// # Errors
    ///
    /// Fails when a component of the state is not checkpointable.
    fn save_state(&self) -> Result<Value, StateError>;
    /// Restores state saved by [`SteppingChecker::save_state`].
    ///
    /// # Errors
    ///
    /// Fails on malformed or incompatible state.
    fn restore_state(&mut self, state: &Value) -> Result<(), StateError>;
    /// Declares the fed history a crash-recovered prefix (see
    /// [`Checker::mark_input_truncated`](crate::checker::Checker::mark_input_truncated)).
    fn mark_input_truncated(&mut self);
    /// Ends the log and produces the report.
    fn finish(self: Box<Self>) -> Report;
}

impl<S: Spec, R: Replayer> SteppingChecker for Checker<S, R> {
    fn feed(&mut self, event: Event) {
        Checker::feed(self, event);
    }

    fn violation_found(&self) -> bool {
        Checker::violation_found(self)
    }

    fn save_state(&self) -> Result<Value, StateError> {
        Checker::save_state(self)
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), StateError> {
        Checker::restore_state(self, state)
    }

    fn mark_input_truncated(&mut self) {
        Checker::mark_input_truncated(self);
    }

    fn finish(self: Box<Self>) -> Report {
        (*self).into_report()
    }
}

/// Builds one checkpointable checker per object, on demand and again
/// after recovery.
pub type SteppingFactory = Arc<dyn Fn(ObjectId) -> Box<dyn SteppingChecker> + Send + Sync>;

/// Tuning knobs for the continuous verifier.
#[derive(Clone, Debug)]
pub struct ContinuousOptions {
    /// Checkpoint after this many newly checked segments (≥ 1).
    pub checkpoint_every_segments: u64,
    /// Delete segments once a checkpoint covers them (disable to keep
    /// the full history, e.g. to re-check it from scratch afterwards).
    pub delete_checked: bool,
}

impl Default for ContinuousOptions {
    fn default() -> ContinuousOptions {
        ContinuousOptions {
            checkpoint_every_segments: 1,
            delete_checked: true,
        }
    }
}

/// What one [`ContinuousVerifier::step`] call accomplished.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StepProgress {
    /// Sealed segments fully checked by this call.
    pub segments_checked: u64,
    /// Events fed to checkers by this call.
    pub events_checked: u64,
}

/// Checks a segment directory incrementally with bounded memory.
///
/// See the [module docs](self) for the polling protocol and the
/// crash-recovery invariants.
pub struct ContinuousVerifier {
    dir: PathBuf,
    factory: SteppingFactory,
    options: ContinuousOptions,
    checkers: BTreeMap<ObjectId, Box<dyn SteppingChecker>>,
    /// Durable sequence number of the first unchecked event.
    next_seq: u64,
    /// The `next_seq` recovered from the checkpoint at open time.
    resume_seq: u64,
    segments_since_checkpoint: u64,
    degradation: Degradation,
    /// Set when a hole or damaged sealed segment makes everything after
    /// it uncheckable; consumption stops, accounting continues.
    stalled: bool,
}

impl std::fmt::Debug for ContinuousVerifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContinuousVerifier")
            .field("dir", &self.dir)
            .field("next_seq", &self.next_seq)
            .field("resume_seq", &self.resume_seq)
            .field("objects", &self.checkers.len())
            .field("stalled", &self.stalled)
            .finish_non_exhaustive()
    }
}

impl ContinuousVerifier {
    /// Opens a segment directory for checking, resuming from the newest
    /// checkpoint whose payload decodes *and* whose checker states
    /// restore; without one, checking starts at sequence 0 with fresh
    /// checkers.
    ///
    /// # Errors
    ///
    /// Propagates directory I/O errors.
    pub fn open<P: Into<PathBuf>>(
        dir: P,
        factory: SteppingFactory,
        options: ContinuousOptions,
    ) -> io::Result<ContinuousVerifier> {
        let dir = dir.into();
        let mut verifier = ContinuousVerifier {
            dir,
            factory,
            options: ContinuousOptions {
                checkpoint_every_segments: options.checkpoint_every_segments.max(1),
                ..options
            },
            checkers: BTreeMap::new(),
            next_seq: 0,
            resume_seq: 0,
            segments_since_checkpoint: 0,
            degradation: Degradation::default(),
            stalled: false,
        };
        for path in checkpoint::list_checkpoints(&verifier.dir)? {
            let Ok(checkpoint) = checkpoint::read_checkpoint(&path) else {
                continue;
            };
            if verifier.restore(&checkpoint).is_ok() {
                break;
            }
            verifier.checkers.clear();
        }
        verifier.resume_seq = verifier.next_seq;
        if vyrd_rt::metrics::enabled() {
            pipeline().checker_resume_seq.set(verifier.next_seq);
        }
        Ok(verifier)
    }

    fn restore(&mut self, checkpoint: &Checkpoint) -> Result<(), StateError> {
        let mut checkers = BTreeMap::new();
        for (object, state) in &checkpoint.states {
            let mut checker = (self.factory)(*object);
            checker.restore_state(state)?;
            checkers.insert(*object, checker);
        }
        self.checkers = checkers;
        self.next_seq = checkpoint.next_seq;
        self.degradation = checkpoint.degradation.clone();
        Ok(())
    }

    /// Durable sequence number of the first unchecked event.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The position checking resumed from at [`ContinuousVerifier::open`]
    /// (0 for a fresh directory).
    pub fn resume_seq(&self) -> u64 {
        self.resume_seq
    }

    /// `true` once a hole or damaged sealed segment stopped consumption.
    pub fn stalled(&self) -> bool {
        self.stalled
    }

    /// `true` if any checker has already found a violation.
    pub fn violation_found(&self) -> bool {
        self.checkers.values().any(|c| c.violation_found())
    }

    /// Checks every sealed segment the manifest gained since the last
    /// call, checkpointing per
    /// [`ContinuousOptions::checkpoint_every_segments`] and deleting
    /// covered segments.
    ///
    /// # Errors
    ///
    /// Propagates segment-directory and checkpoint I/O errors.
    pub fn step(&mut self) -> io::Result<StepProgress> {
        let mut progress = StepProgress::default();
        if self.stalled {
            return Ok(progress);
        }
        let segments = scan_segments(&self.dir)?;
        for segment in &segments {
            let Some(end_seq) = segment.end_seq() else {
                continue; // unsealed tail: only `finalize` may touch it
            };
            if end_seq <= self.next_seq {
                continue; // already checked (and maybe awaiting deletion)
            }
            if self.hole_before(segment) {
                break;
            }
            let sealed_events = segment.sealed_events.unwrap_or(0);
            let (events, damage) = read_sealed(segment)?;
            let decoded = events.len() as u64;
            progress.events_checked += self.feed_from(segment.first_seq, events);
            if decoded < sealed_events || damage > 0 {
                // A *sealed* segment decoding short is real corruption
                // (the seal fsynced it): everything after it is lost.
                self.degradation.torn_bytes_discarded += damage;
                self.degradation.events_lost += sealed_events - decoded;
                self.next_seq = segment.first_seq + decoded;
                self.stalled = true;
                break;
            }
            self.next_seq = end_seq;
            progress.segments_checked += 1;
            self.segments_since_checkpoint += 1;
            if self.segments_since_checkpoint >= self.options.checkpoint_every_segments {
                self.checkpoint()?;
            }
        }
        Ok(progress)
    }

    /// Records a hole (missing segment file) in front of `segment`;
    /// returns `true` and stalls if one exists.
    fn hole_before(&mut self, segment: &ScannedSegment) -> bool {
        if segment.first_seq <= self.next_seq {
            return false;
        }
        self.degradation.events_lost += segment.first_seq - self.next_seq;
        self.stalled = true;
        true
    }

    /// Feeds `events` (the contents of the segment starting at
    /// `first_seq`) to the per-object checkers, skipping the prefix
    /// already covered by `next_seq`. Returns how many were fed.
    fn feed_from(&mut self, first_seq: u64, events: Vec<Event>) -> u64 {
        let mut fed = 0;
        for (i, event) in events.into_iter().enumerate() {
            let seq = first_seq + i as u64;
            if seq < self.next_seq {
                continue;
            }
            let object = event.object();
            let factory = &self.factory;
            let checker = self
                .checkers
                .entry(object)
                .or_insert_with(|| factory(object));
            checker.feed(event);
            fed += 1;
        }
        fed
    }

    /// Serializes every checker's state plus the degradation ledger into
    /// a new checkpoint file, then (if configured) deletes the segments
    /// the checkpoint covers.
    ///
    /// # Errors
    ///
    /// Fails when a checker state is not serializable
    /// ([`io::ErrorKind::InvalidInput`]) or on I/O errors; the previous
    /// checkpoint survives either way.
    pub fn checkpoint(&mut self) -> io::Result<PathBuf> {
        let mut states = Vec::with_capacity(self.checkers.len());
        for (object, checker) in &self.checkers {
            let state = checker.save_state().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("object {} state not checkpointable: {e}", object.0),
                )
            })?;
            states.push((*object, state));
        }
        let path = checkpoint::write_checkpoint(
            &self.dir,
            &Checkpoint {
                next_seq: self.next_seq,
                states,
                degradation: self.degradation.clone(),
            },
        )?;
        self.segments_since_checkpoint = 0;
        if self.options.delete_checked {
            self.delete_covered()?;
        }
        Ok(path)
    }

    /// Deletes sealed segments lying entirely below `next_seq`.
    fn delete_covered(&self) -> io::Result<()> {
        for segment in scan_segments(&self.dir)? {
            if matches!(segment.end_seq(), Some(end) if end <= self.next_seq) {
                fs::remove_file(&segment.path)?;
                if vyrd_rt::metrics::enabled() {
                    pipeline().segment_deleted.inc();
                }
            }
        }
        Ok(())
    }

    /// Finishes the run: checks any remaining sealed segments, recovers
    /// the unsealed tail (torn frames tolerated and charged to the
    /// ledger), writes a final checkpoint, and merges the per-object
    /// reports.
    ///
    /// Call once the writer has stopped (after
    /// [`SegmentLogHandle::finish`](super::SegmentLogHandle::finish), or
    /// when recovering a directory whose writer process died).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and non-checkpointable-state errors from
    /// the final checkpoint.
    pub fn finalize(mut self) -> io::Result<Report> {
        self.step()?;
        let mut crash_evidence = self.stalled;
        if !self.stalled {
            crash_evidence |= self.consume_tail()?;
        }
        if crash_evidence {
            // The durable history demonstrably ends short of the real
            // execution (unsealed tail, torn frames, or a hole), so a
            // commit whose return is missing at EOF is lost coverage,
            // not a malformed log.
            for checker in self.checkers.values_mut() {
                checker.mark_input_truncated();
            }
        }
        self.checkpoint()?;
        let mut merged = Report::default();
        for (_, checker) in std::mem::take(&mut self.checkers) {
            let report = checker.finish();
            let m = &mut merged.stats;
            let s = &report.stats;
            m.events += s.events;
            m.commits_applied += s.commits_applied;
            m.methods_completed += s.methods_completed;
            m.observers_checked += s.observers_checked;
            m.snapshots_taken += s.snapshots_taken;
            m.view_comparisons += s.view_comparisons;
            m.view_keys_compared += s.view_keys_compared;
            m.writes_replayed += s.writes_replayed;
            m.lin_windows_searched += s.lin_windows_searched;
            m.lin_witness_backtracks += s.lin_witness_backtracks;
            m.lin_fastpath_hits += s.lin_fastpath_hits;
            m.batches += s.batches;
            m.batch_events += s.batch_events;
            m.snapshot_replays += s.snapshot_replays;
            merged.degradation.absorb(&report.degradation);
            if merged.violation.is_none() {
                merged.violation = report.violation.clone();
            }
        }
        merged.degradation.absorb(&self.degradation);
        Ok(merged)
    }

    /// Consumes the unsealed tail segments (files past the manifest's
    /// coverage) with torn-tail recovery. Only the *last* file may be
    /// torn legitimately; damage in front of surviving data stalls
    /// consumption and counts the survivors as lost. Returns `true` when
    /// the directory shows crash evidence (an unsealed tail exists — a
    /// clean [`SegmentLogHandle::finish`](super::SegmentLogHandle::finish)
    /// seals everything — or frames were torn).
    fn consume_tail(&mut self) -> io::Result<bool> {
        let segments = scan_segments(&self.dir)?;
        let tails: Vec<&ScannedSegment> = segments
            .iter()
            .filter(|s| s.sealed_events.is_none())
            .collect();
        let crash_evidence = !tails.is_empty();
        for segment in tails {
            if self.stalled {
                // Unreachable data behind damage: count its payload as
                // discarded so the verdict cannot claim full coverage.
                let len = fs::metadata(&segment.path).map(|m| m.len()).unwrap_or(0);
                self.degradation.torn_bytes_discarded += len;
                continue;
            }
            if segment.first_seq < self.next_seq {
                // A tail file the checkpoint already covers (e.g. sealed
                // right before the crash, manifest line lost): skip the
                // checked prefix below.
            } else if self.hole_before(segment) {
                let len = fs::metadata(&segment.path).map(|m| m.len()).unwrap_or(0);
                self.degradation.torn_bytes_discarded += len;
                continue;
            }
            let (events, damage) = match File::open(&segment.path) {
                Ok(file) => match codec::read_log_recovering(file) {
                    DecodeOutcome::Complete { records } => (records, 0),
                    DecodeOutcome::RecoveredPrefix {
                        records,
                        bytes_discarded,
                        ..
                    } => (records, bytes_discarded),
                },
                Err(e) => return Err(e),
            };
            let decoded = events.len() as u64;
            self.feed_from(segment.first_seq, events);
            self.next_seq = segment.first_seq + decoded;
            if damage > 0 {
                self.degradation.torn_bytes_discarded += damage;
                // Anything after a torn file lost its prefix.
                self.stalled = true;
            }
        }
        Ok(crash_evidence)
    }
}

/// Reads one sealed segment, tolerating (and measuring) a damaged tail.
/// Returns the decoded events and the number of damaged bytes.
fn read_sealed(segment: &ScannedSegment) -> io::Result<(Vec<Event>, u64)> {
    let file = File::open(&segment.path)?;
    Ok(match codec::read_log_recovering(file) {
        DecodeOutcome::Complete { records } => (records, 0),
        DecodeOutcome::RecoveredPrefix {
            records,
            bytes_discarded,
            ..
        } => (records, bytes_discarded),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogMode;
    use crate::segment::{SegmentConfig, SegmentLogHandle};
    use crate::spec::{MethodKind, SpecEffect, SpecError};
    use crate::view::View;
    use crate::MethodId;

    /// A multiset-flavoured spec small enough for unit tests.
    #[derive(Clone, Default)]
    struct CountSpec(std::collections::BTreeMap<i64, u64>);

    impl Spec for CountSpec {
        fn kind(&self, m: &MethodId) -> MethodKind {
            if m.name() == "Get" {
                MethodKind::Observer
            } else {
                MethodKind::Mutator
            }
        }

        fn apply(
            &mut self,
            m: &MethodId,
            args: &[Value],
            _ret: &Value,
        ) -> Result<SpecEffect, SpecError> {
            let x = args[0].as_int().ok_or_else(|| SpecError::new("non-int"))?;
            match m.name() {
                "Add" => {
                    *self.0.entry(x).or_insert(0) += 1;
                    Ok(SpecEffect::touching([x]))
                }
                other => Err(SpecError::new(format!("unknown {other}"))),
            }
        }

        fn accepts_observation(&self, _m: &MethodId, args: &[Value], ret: &Value) -> bool {
            let x = args[0].as_int().unwrap_or(0);
            ret.as_int() == Some(self.0.get(&x).copied().unwrap_or(0) as i64)
        }

        fn view(&self) -> View {
            self.0
                .iter()
                .map(|(&x, &n)| (Value::from(x), Value::from(n)))
                .collect()
        }

        fn save_state(&self) -> Option<Value> {
            Some(Value::List(
                self.0
                    .iter()
                    .map(|(&x, &n)| Value::pair(Value::from(x), Value::from(n as i64)))
                    .collect(),
            ))
        }

        fn restore_state(&mut self, state: &Value) -> Result<(), SpecError> {
            let entries = state
                .as_list()
                .ok_or_else(|| SpecError::new("state must be a list"))?;
            self.0.clear();
            for e in entries {
                let (x, n) = e.as_pair().ok_or_else(|| SpecError::new("pair"))?;
                let (Some(x), Some(n)) = (x.as_int(), n.as_int()) else {
                    return Err(SpecError::new("ints"));
                };
                self.0.insert(x, n as u64);
            }
            Ok(())
        }
    }

    fn factory() -> SteppingFactory {
        Arc::new(|_| Box::new(Checker::io(CountSpec::default())))
    }

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("vyrd-{tag}-{}", std::process::id()))
    }

    /// Records `rounds` Add/Get pairs through a segmented log and
    /// returns the directory.
    fn record(dir: &PathBuf, rounds: i64, budget: u64) -> u64 {
        let handle = SegmentLogHandle::spawn(
            LogMode::Io,
            SegmentConfig::new(dir).segment_bytes(budget),
        )
        .unwrap();
        let mut events = Vec::new();
        for i in 0..rounds {
            let tid = crate::event::ThreadId(0);
            let object = ObjectId(0);
            events.push(Event::Call {
                tid,
                object,
                method: MethodId::from("Add"),
                args: crate::event::ArgList::from_slice(&[Value::from(i % 5)]),
            });
            events.push(Event::Commit { tid, object });
            events.push(Event::Return {
                tid,
                object,
                method: MethodId::from("Add"),
                ret: Value::Unit,
            });
        }
        let total = events.len() as u64;
        handle.append(events);
        let summary = handle.finish().unwrap();
        assert_eq!(summary.events, total);
        total
    }

    #[test]
    fn checks_deletes_and_resumes() {
        let dir = temp_dir("continuous-basic");
        std::fs::remove_dir_all(&dir).ok();
        let total = record(&dir, 40, 256);

        let mut verifier =
            ContinuousVerifier::open(&dir, factory(), ContinuousOptions::default()).unwrap();
        let progress = verifier.step().unwrap();
        assert!(progress.segments_checked > 1, "{progress:?}");
        // Checked segments were deleted; only the ones past the last
        // checkpoint remain.
        let remaining = scan_segments(&dir).unwrap();
        assert!(
            (remaining.len() as u64) < progress.segments_checked,
            "expected deletions, {} segments remain",
            remaining.len()
        );
        let report = verifier.finalize().unwrap();
        assert!(report.passed(), "{report:?}");
        assert!(!report.is_degraded(), "{:?}", report.degradation);
        assert_eq!(report.stats.events, total);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resumes_from_checkpoint_without_rechecking() {
        let dir = temp_dir("continuous-resume");
        std::fs::remove_dir_all(&dir).ok();
        let total = record(&dir, 40, 256);

        // First pass: check a few segments, checkpoint, then drop the
        // verifier (simulating a crash after the checkpoint).
        let mut first =
            ContinuousVerifier::open(&dir, factory(), ContinuousOptions::default()).unwrap();
        first.step().unwrap();
        let reached = first.next_seq();
        assert!(reached > 0);
        drop(first);

        // Second pass resumes exactly at the checkpointed position.
        let resumed =
            ContinuousVerifier::open(&dir, factory(), ContinuousOptions::default()).unwrap();
        assert_eq!(resumed.resume_seq(), reached);
        let report = resumed.finalize().unwrap();
        assert!(report.passed(), "{report:?}");
        assert!(!report.is_degraded());
        // Events checked across both processes cover the full history:
        // the resumed run checked total - reached, and recovery restored
        // the counters for the first `reached`.
        assert_eq!(report.stats.events, total);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_degrades_but_never_fails_clean_prefix() {
        let dir = temp_dir("continuous-torn");
        std::fs::remove_dir_all(&dir).ok();
        record(&dir, 40, 100_000); // single open segment, sealed at finish
        // Un-seal it: drop the manifest entry and tear the file.
        let manifest = dir.join("manifest.log");
        std::fs::write(&manifest, "vyrd-segment-manifest v1\n").unwrap();
        let seg = scan_segments(&dir).unwrap().remove(0);
        assert!(seg.sealed_events.is_none());
        let bytes = std::fs::read(&seg.path).unwrap();
        std::fs::write(&seg.path, &bytes[..bytes.len() - 3]).unwrap();

        let verifier =
            ContinuousVerifier::open(&dir, factory(), ContinuousOptions::default()).unwrap();
        let report = verifier.finalize().unwrap();
        assert!(report.passed(), "prefix is clean: {report:?}");
        assert!(report.is_degraded(), "torn bytes must degrade");
        assert!(report.degradation.torn_bytes_discarded > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_sealed_segment_is_a_hole_not_a_pass() {
        let dir = temp_dir("continuous-hole");
        std::fs::remove_dir_all(&dir).ok();
        record(&dir, 40, 256);
        let segments = scan_segments(&dir).unwrap();
        assert!(segments.len() >= 3);
        // Delete a middle segment without any covering checkpoint.
        std::fs::remove_file(&segments[1].path).unwrap();

        let verifier =
            ContinuousVerifier::open(&dir, factory(), ContinuousOptions::default()).unwrap();
        let report = verifier.finalize().unwrap();
        assert!(report.is_degraded(), "{:?}", report.degradation);
        assert!(report.degradation.events_lost > 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
