//! Actions recorded in the VYRD log.
//!
//! §3.1 of the paper models programs as state transition systems whose
//! actions include method *calls*, *returns*, and atomic *updates* of shared
//! state. For runtime checking the implementation is instrumented to record
//! a subset of its actions into a log (§4.2):
//!
//! * **call / return** actions of public methods — required for both I/O and
//!   view refinement;
//! * **commit** actions of mutator methods (§4.1) — the programmer-designated
//!   action that makes the method's effect visible to other threads;
//! * **commit block** boundaries (§5.2) — a region the programmer asserts is
//!   atomic, used to roll the logged execution into the equivalent execution
//!   `t'` in which no other thread is mid-commit-block at a commit point;
//! * **shared-variable writes** — required only for view refinement, at
//!   either fine (one entry per write) or coarse (one replayable record per
//!   atomic group of writes, §6.2) granularity.

use std::fmt;
use std::sync::Arc;

use vyrd_rt::intern::Interner;

use crate::value::Value;

/// Identifier of a thread, as recorded in log entries.
///
/// The paper partitions thread identifiers into application threads
/// (`Tid_app`) and data-structure-internal worker threads (`Tid_ds`, e.g.
/// the B-link tree compression thread). The partition only matters for
/// reporting; both kinds log through the same API.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u32);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifier of the data-structure *instance* an action belongs to.
///
/// The paper keeps "actions of different objects in separate logs" (§6.1)
/// so that per-object logs can be checked concurrently and independently
/// (§8). Every event carries the object it acted on; single-object runs
/// use [`ObjectId::DEFAULT`] throughout, which is also what pre-`ObjectId`
/// logs decode to (see [`crate::codec`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// The object id used when a run does not distinguish objects — and
    /// the id assigned to every event of a legacy (pre-`ObjectId`) log.
    pub const DEFAULT: ObjectId = ObjectId(0);
}

impl Default for ObjectId {
    fn default() -> ObjectId {
        ObjectId::DEFAULT
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "O{}", self.0)
    }
}

/// The process-wide method-name registry backing [`MethodId`].
///
/// Distinct method names of a program under test are few and static, so
/// the bounded leak of the copy-on-write interner is negligible — and the
/// logging fast path gets a `Copy` `u32` id instead of a reference count
/// bump (let alone an allocation) per recorded call/return.
static METHOD_NAMES: Interner = Interner::new();

/// Name of a public method of the data structure under test.
///
/// Interned: the string is registered once in a process-wide table and
/// the id is a dense `u32`, so `MethodId` is `Copy` and event
/// construction on the logging hot path never allocates. Equality is by
/// id, which coincides with equality by string content (interning is
/// injective); ordering compares the names themselves so sort orders
/// stay textual.
///
/// ```
/// use vyrd_core::MethodId;
/// let m = MethodId::from("Insert");
/// assert_eq!(m.name(), "Insert");
/// assert_eq!(m, MethodId::from("Insert"));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MethodId(u32);

impl MethodId {
    /// The method name.
    pub fn name(&self) -> &'static str {
        // The only constructors go through the interner, so the id is
        // always resolvable; the fallback keeps this total anyway.
        METHOD_NAMES.get(self.0).unwrap_or("<unknown-method>")
    }
}

impl From<&str> for MethodId {
    fn from(s: &str) -> MethodId {
        MethodId(METHOD_NAMES.intern(s))
    }
}

impl From<String> for MethodId {
    fn from(s: String) -> MethodId {
        MethodId(METHOD_NAMES.intern(&s))
    }
}

impl PartialOrd for MethodId {
    fn partial_cmp(&self, other: &MethodId) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MethodId {
    fn cmp(&self, other: &MethodId) -> std::cmp::Ordering {
        // By name, not id: reports and tables sort methods textually.
        self.name().cmp(other.name())
    }
}

impl fmt::Display for MethodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Argument list of a [`Event::Call`], inlining small arities.
///
/// Almost every public method of the paper's benchmark systems takes 0–2
/// arguments; `ArgList` stores those inline, so building a call event
/// performs no heap allocation. Longer lists fall back to a `Vec`.
/// Dereferences to `&[Value]`, so read sites (`args.len()`,
/// `args.iter()`, `&args[0]`) treat it exactly like a slice.
///
/// ```
/// use vyrd_core::event::ArgList;
/// use vyrd_core::Value;
/// let args = ArgList::from_slice(&[Value::from(1i64), Value::from(2i64)]);
/// assert_eq!(args.len(), 2);
/// assert_eq!(args, ArgList::from(vec![Value::from(1i64), Value::from(2i64)]));
/// ```
#[derive(Clone, Debug)]
pub struct ArgList(ArgRepr);

#[derive(Clone, Debug)]
enum ArgRepr {
    /// `len` live values at the front of `vals`; the rest are `Unit`
    /// padding.
    Inline { len: u8, vals: [Value; 2] },
    Heap(Vec<Value>),
}

impl ArgList {
    /// The empty argument list.
    pub const fn new() -> ArgList {
        ArgList(ArgRepr::Inline {
            len: 0,
            vals: [Value::Unit, Value::Unit],
        })
    }

    /// Builds an argument list by cloning a slice — allocation-free for
    /// up to two arguments.
    pub fn from_slice(args: &[Value]) -> ArgList {
        match args {
            [] => ArgList::new(),
            [a] => ArgList(ArgRepr::Inline {
                len: 1,
                vals: [a.clone(), Value::Unit],
            }),
            [a, b] => ArgList(ArgRepr::Inline {
                len: 2,
                vals: [a.clone(), b.clone()],
            }),
            _ => ArgList(ArgRepr::Heap(args.to_vec())),
        }
    }

    /// The arguments as a slice.
    pub fn as_slice(&self) -> &[Value] {
        match &self.0 {
            ArgRepr::Inline { len, vals } => &vals[..*len as usize],
            ArgRepr::Heap(v) => v,
        }
    }
}

impl Default for ArgList {
    fn default() -> ArgList {
        ArgList::new()
    }
}

impl std::ops::Deref for ArgList {
    type Target = [Value];

    fn deref(&self) -> &[Value] {
        self.as_slice()
    }
}

impl From<Vec<Value>> for ArgList {
    fn from(mut v: Vec<Value>) -> ArgList {
        match v.len() {
            0 => ArgList::new(),
            1 => {
                let a = v.remove(0);
                ArgList(ArgRepr::Inline {
                    len: 1,
                    vals: [a, Value::Unit],
                })
            }
            2 => {
                let b = v.remove(1);
                let a = v.remove(0);
                ArgList(ArgRepr::Inline {
                    len: 2,
                    vals: [a, b],
                })
            }
            _ => ArgList(ArgRepr::Heap(v)),
        }
    }
}

impl From<&[Value]> for ArgList {
    fn from(args: &[Value]) -> ArgList {
        ArgList::from_slice(args)
    }
}

impl FromIterator<Value> for ArgList {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> ArgList {
        iter.into_iter().collect::<Vec<Value>>().into()
    }
}

impl<'a> IntoIterator for &'a ArgList {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;

    fn into_iter(self) -> std::slice::Iter<'a, Value> {
        self.as_slice().iter()
    }
}

impl PartialEq for ArgList {
    fn eq(&self, other: &ArgList) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for ArgList {}

impl PartialEq<[Value]> for ArgList {
    fn eq(&self, other: &[Value]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<Value>> for ArgList {
    fn eq(&self, other: &Vec<Value>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// Identifier of a logged shared variable.
///
/// A variable is addressed by a *space* (a name for a family of variables,
/// e.g. `"A.elt"` for the multiset's element array or `"node"` for B-link
/// tree nodes) plus an integer *index* within the space (slot number, node
/// id, chunk handle, ...).
///
/// ```
/// use vyrd_core::VarId;
/// let v = VarId::new("A.elt", 3);
/// assert_eq!(v.to_string(), "A.elt[3]");
/// ```
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId {
    space: Arc<str>,
    index: i64,
}

impl VarId {
    /// Creates a variable identifier from a space name and an index.
    pub fn new(space: &str, index: i64) -> VarId {
        VarId {
            space: Arc::from(space),
            index,
        }
    }

    /// The variable family this variable belongs to.
    pub fn space(&self) -> &str {
        &self.space
    }

    /// The index within the space.
    pub fn index(&self) -> i64 {
        self.index
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.space, self.index)
    }
}

/// One logged action.
///
/// Events appear in the log in the order the corresponding actions occur in
/// the execution; the paper achieves this by performing each logged action
/// atomically with its log update (§4.2), and this library does the same by
/// requiring instrumentation sites to log while holding whatever lock makes
/// the action visible (see [`crate::instrument`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// Call action `(t, µ, ν)`: thread `t` invokes public method `µ` with
    /// actual arguments `ν`.
    Call {
        /// Calling thread.
        tid: ThreadId,
        /// Object the method was invoked on.
        object: ObjectId,
        /// Invoked method.
        method: MethodId,
        /// Actual arguments.
        args: ArgList,
    },
    /// Return action `(t, µ, ρ)`: thread `t` returns from `µ` with value `ρ`.
    Return {
        /// Returning thread.
        tid: ThreadId,
        /// Object the method was invoked on.
        object: ObjectId,
        /// Returning method.
        method: MethodId,
        /// Returned value (exceptional terminations are special values,
        /// see [`Value::failure`] / [`Value::exception`]).
        ret: Value,
    },
    /// The commit action of the method execution `tid` is currently inside
    /// (§4.1). Exactly one per mutator execution path.
    Commit {
        /// Committing thread.
        tid: ThreadId,
        /// Object the committing method belongs to.
        object: ObjectId,
    },
    /// Start of a commit block (§5.2) executed by `tid`.
    BlockBegin {
        /// Thread entering its commit block.
        tid: ThreadId,
        /// Object whose commit block is being entered.
        object: ObjectId,
    },
    /// End of a commit block executed by `tid`.
    BlockEnd {
        /// Thread leaving its commit block.
        tid: ThreadId,
        /// Object whose commit block is being left.
        object: ObjectId,
    },
    /// An atomic update of shared variable `var` to `value`, required in the
    /// log only when view refinement is being checked and
    /// `var ∈ supp(view_I)` (§5.2).
    Write {
        /// Writing thread.
        tid: ThreadId,
        /// Object whose shared state was written.
        object: ObjectId,
        /// Variable written.
        var: VarId,
        /// Value written (for coarse-grained records, the replayable
        /// post-state of the whole atomic group, §6.2).
        value: Value,
    },
}

impl Event {
    /// The thread that performed this action.
    pub fn tid(&self) -> ThreadId {
        match self {
            Event::Call { tid, .. }
            | Event::Return { tid, .. }
            | Event::Commit { tid, .. }
            | Event::BlockBegin { tid, .. }
            | Event::BlockEnd { tid, .. }
            | Event::Write { tid, .. } => *tid,
        }
    }

    /// The object this action belongs to — the sharding key of
    /// [`crate::shard::ShardRouter`].
    pub fn object(&self) -> ObjectId {
        match self {
            Event::Call { object, .. }
            | Event::Return { object, .. }
            | Event::Commit { object, .. }
            | Event::BlockBegin { object, .. }
            | Event::BlockEnd { object, .. }
            | Event::Write { object, .. } => *object,
        }
    }

    /// Rough in-memory size in bytes, for logging-overhead accounting.
    pub fn size_estimate(&self) -> usize {
        16 + match self {
            Event::Call { args, .. } => args.iter().map(Value::size_estimate).sum(),
            Event::Return { ret, .. } => ret.size_estimate(),
            Event::Commit { .. } | Event::BlockBegin { .. } | Event::BlockEnd { .. } => 0,
            Event::Write { value, .. } => value.size_estimate(),
        }
    }

    /// `true` for the events that I/O refinement requires in the log
    /// (call, return, and commit actions, §4.2).
    pub fn required_for_io(&self) -> bool {
        matches!(
            self,
            Event::Call { .. } | Event::Return { .. } | Event::Commit { .. }
        )
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Single-object runs keep the familiar rendering; multi-object
        // runs prefix the object so sharded traces stay readable.
        if self.object() != ObjectId::DEFAULT {
            write!(f, "{} ", self.object())?;
        }
        match self {
            Event::Call {
                tid, method, args, ..
            } => {
                write!(f, "{tid} call {method}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Event::Return {
                tid, method, ret, ..
            } => write!(f, "{tid} ret  {method} -> {ret}"),
            Event::Commit { tid, .. } => write!(f, "{tid} commit"),
            Event::BlockBegin { tid, .. } => write!(f, "{tid} block-begin"),
            Event::BlockEnd { tid, .. } => write!(f, "{tid} block-end"),
            Event::Write {
                tid, var, value, ..
            } => write!(f, "{tid} write {var} := {value}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u32) -> ThreadId {
        ThreadId(n)
    }

    #[test]
    fn method_id_semantics() {
        let a = MethodId::from("LookUp");
        let b = a; // Copy
        assert_eq!(a, b);
        assert_eq!(a.name(), "LookUp");
        assert_ne!(a, MethodId::from("Insert"));
        assert_eq!(MethodId::from("x".to_owned()).name(), "x");
        // Ordering is textual, regardless of interning order.
        assert!(MethodId::from("Insert") < MethodId::from("LookUp"));
    }

    #[test]
    fn arg_list_inlines_small_arities() {
        let empty = ArgList::new();
        assert!(empty.is_empty());
        assert_eq!(empty, ArgList::from(vec![]));
        let two = ArgList::from_slice(&[1i64.into(), 2i64.into()]);
        assert_eq!(two.len(), 2);
        assert_eq!(two[0], Value::from(1i64));
        assert_eq!(two, ArgList::from(vec![Value::from(1i64), Value::from(2i64)]));
        let three: ArgList = (0..3i64).map(Value::from).collect();
        assert_eq!(three.len(), 3);
        assert_eq!(three.as_slice(), ArgList::from_slice(three.as_slice()).as_slice());
        assert_ne!(two, three);
    }

    #[test]
    fn var_id_accessors() {
        let v = VarId::new("valid", 9);
        assert_eq!(v.space(), "valid");
        assert_eq!(v.index(), 9);
        assert_eq!(v, VarId::new("valid", 9));
        assert_ne!(v, VarId::new("valid", 8));
        assert_ne!(v, VarId::new("elt", 9));
    }

    #[test]
    fn event_tid_and_object_extraction() {
        let o = ObjectId(7);
        let events = [
            Event::Call {
                tid: t(1),
                object: o,
                method: "m".into(),
                args: ArgList::new(),
            },
            Event::Return {
                tid: t(1),
                object: o,
                method: "m".into(),
                ret: Value::Unit,
            },
            Event::Commit { tid: t(1), object: o },
            Event::BlockBegin { tid: t(1), object: o },
            Event::BlockEnd { tid: t(1), object: o },
            Event::Write {
                tid: t(1),
                object: o,
                var: VarId::new("x", 0),
                value: Value::Unit,
            },
        ];
        assert!(events.iter().all(|e| e.tid() == t(1)));
        assert!(events.iter().all(|e| e.object() == o));
    }

    #[test]
    fn object_id_default_and_display() {
        assert_eq!(ObjectId::default(), ObjectId::DEFAULT);
        assert_eq!(ObjectId(0), ObjectId::DEFAULT);
        assert_eq!(ObjectId(4).to_string(), "O4");
    }

    #[test]
    fn io_required_subset() {
        assert!(Event::Commit {
            tid: t(2),
            object: ObjectId::DEFAULT
        }
        .required_for_io());
        assert!(!Event::BlockBegin {
            tid: t(2),
            object: ObjectId::DEFAULT
        }
        .required_for_io());
        assert!(!Event::Write {
            tid: t(2),
            object: ObjectId::DEFAULT,
            var: VarId::new("x", 0),
            value: Value::Unit
        }
        .required_for_io());
    }

    #[test]
    fn display_round_trip_is_readable() {
        let e = Event::Call {
            tid: t(3),
            object: ObjectId::DEFAULT,
            method: "Insert".into(),
            args: vec![5i64.into(), 6i64.into()].into(),
        };
        assert_eq!(e.to_string(), "T3 call Insert(5, 6)");
        let w = Event::Write {
            tid: t(3),
            object: ObjectId::DEFAULT,
            var: VarId::new("A.elt", 0),
            value: 5i64.into(),
        };
        assert_eq!(w.to_string(), "T3 write A.elt[0] := 5");
    }

    #[test]
    fn display_prefixes_non_default_object() {
        let e = Event::Commit {
            tid: t(3),
            object: ObjectId(2),
        };
        assert_eq!(e.to_string(), "O2 T3 commit");
    }
}
