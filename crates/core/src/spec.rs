//! Executable specifications (§3).
//!
//! A specification is a **method-atomic, deterministic** state transition
//! system: methods execute atomically, and given a method, its arguments,
//! and its return value, the successor state is unique. Determinism in this
//! sense still permits *return-value nondeterminism* — e.g. the multiset
//! `Insert` (Fig. 1) may return `success` or `failure` at any state, but
//! once the return value is fixed the next state is fixed.
//!
//! The checker drives the specification with the **witness interleaving**:
//! method executions ordered by their commit actions, each applied together
//! with its observed return value (§4).

use std::fmt;

use crate::event::MethodId;
use crate::value::Value;
use crate::view::View;

/// Whether a method may modify abstract data-structure state (§3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MethodKind {
    /// May modify the abstract state. Requires a commit annotation.
    Mutator,
    /// Never modifies the abstract state (e.g. `LookUp`). Not
    /// commit-annotated; checked against every state in its call–return
    /// window (§4.3).
    Observer,
}

/// Why a specification rejected a transition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError {
    message: String,
}

impl SpecError {
    /// Creates a rejection with a human-readable reason.
    pub fn new(message: impl Into<String>) -> SpecError {
        SpecError {
            message: message.into(),
        }
    }

    /// The rejection reason.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for SpecError {}

/// The effect of applying one mutator to the specification, as reported
/// back to the view checker.
///
/// `dirty_keys` lists the view entries the transition may have changed;
/// the incremental comparison of §6.4 only recomputes and compares those.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpecEffect {
    /// View keys whose entries may have changed.
    pub dirty_keys: Vec<Value>,
}

impl SpecEffect {
    /// An effect that changed nothing observable.
    pub fn unchanged() -> SpecEffect {
        SpecEffect::default()
    }

    /// An effect that may have changed the given view keys.
    pub fn touching<I>(keys: I) -> SpecEffect
    where
        I: IntoIterator,
        I::Item: Into<Value>,
    {
        SpecEffect {
            dirty_keys: keys.into_iter().map(Into::into).collect(),
        }
    }
}

/// A method-atomic, deterministic executable specification.
///
/// Implementations must be `Clone` because the observer-window check (§4.3)
/// snapshots specification states while observer methods are in flight.
///
/// # Examples
///
/// A two-element set specification:
///
/// ```
/// use vyrd_core::spec::{MethodKind, Spec, SpecEffect, SpecError};
/// use vyrd_core::view::View;
/// use vyrd_core::{MethodId, Value};
/// use std::collections::BTreeSet;
///
/// #[derive(Clone, Default)]
/// struct SetSpec(BTreeSet<i64>);
///
/// impl Spec for SetSpec {
///     fn kind(&self, method: &MethodId) -> MethodKind {
///         if method.name() == "Contains" { MethodKind::Observer } else { MethodKind::Mutator }
///     }
///     fn apply(&mut self, method: &MethodId, args: &[Value], ret: &Value)
///         -> Result<SpecEffect, SpecError>
///     {
///         let x = args[0].as_int().ok_or_else(|| SpecError::new("bad arg"))?;
///         match method.name() {
///             "Add" => { self.0.insert(x); Ok(SpecEffect::touching([x])) }
///             other => Err(SpecError::new(format!("unknown mutator {other}"))),
///         }
///     }
///     fn accepts_observation(&self, _m: &MethodId, args: &[Value], ret: &Value) -> bool {
///         ret.as_bool() == args[0].as_int().map(|x| self.0.contains(&x))
///     }
///     fn view(&self) -> View {
///         self.0.iter().map(|&x| (Value::from(x), Value::Bool(true))).collect()
///     }
/// }
/// ```
pub trait Spec: Clone + Send + 'static {
    /// Classifies a public method.
    fn kind(&self, method: &MethodId) -> MethodKind;

    /// Takes the transition for a committing mutator execution with
    /// signature `(method, args, ret)`.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] when no transition with this signature exists
    /// at the current state — the checker reports this as a refinement
    /// violation.
    fn apply(
        &mut self,
        method: &MethodId,
        args: &[Value],
        ret: &Value,
    ) -> Result<SpecEffect, SpecError>;

    /// Is `ret` a valid return value for observer `method(args)` at the
    /// current state?
    fn accepts_observation(&self, method: &MethodId, args: &[Value], ret: &Value) -> bool;

    /// The canonical abstraction of the current state — `view_S` (§5).
    fn view(&self) -> View;

    /// The view entry for a single key, used by the incremental comparison
    /// (§6.4). Must agree with [`Spec::view`].
    ///
    /// The default implementation materializes the full view; specs with
    /// large state should override it.
    fn view_of(&self, key: &Value) -> Option<Value> {
        self.view().get(key).cloned()
    }

    /// Serializes the complete specification state as a [`Value`] for
    /// checkpointing, or `None` when this spec does not support it (the
    /// default). Specs for fixed ADTs have small, closed state and should
    /// override this pair so a continuous verification run can persist and
    /// resume them (see `vyrd_core::segment`).
    fn save_state(&self) -> Option<Value> {
        None
    }

    /// Restores state previously produced by [`Spec::save_state`],
    /// **fully overwriting** the current state (the receiver is typically
    /// a freshly constructed spec; constructor parameters such as buffer
    /// counts are *not* part of the serialized state and must match).
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] when the encoding is unrecognized or
    /// checkpointing is unsupported (the default).
    fn restore_state(&mut self, _state: &Value) -> Result<(), SpecError> {
        Err(SpecError::new(
            "this specification does not support checkpoint restore",
        ))
    }

    /// A compact summary of the current state that is *sufficient* to
    /// judge any observer return value — the fixed-ADT fast path of the
    /// linearizability checking mode (`Checker::lin`).
    ///
    /// For a stack, every `Peek` depends only on the top element; for a
    /// queue, every `Front` depends only on the front element — so a
    /// window candidate can be retained as one [`Value`] instead of a
    /// full specification clone. Specs with such a summary override
    /// this pair; the `None` default makes the lin checker fall back to
    /// full snapshots and [`Spec::accepts_observation`].
    ///
    /// Contract: a spec must return `Some` at *every* state or at none
    /// — the lin checker decides snapshot retention per window index
    /// from this answer, and a spec that flips mid-run would leave some
    /// window states with neither digest nor snapshot.
    fn observation_digest(&self) -> Option<Value> {
        None
    }

    /// Is `ret` a valid return value for observer `method(args)` at a
    /// state summarized by `digest` (produced by
    /// [`Spec::observation_digest`] at that state)?
    ///
    /// Must agree with [`Spec::accepts_observation`] evaluated at the
    /// digested state; the property tests for lin/io agreement pin
    /// this. The default rejects everything, matching the `None`
    /// default of `observation_digest`.
    fn accepts_observation_digest(
        &self,
        _method: &MethodId,
        _args: &[Value],
        _ret: &Value,
        _digest: &Value,
    ) -> bool {
        false
    }

    /// Snapshot-retention hint for the observer-window machinery: how
    /// many commits may elapse between retained full-spec snapshots
    /// while observer windows are open.
    ///
    /// `None` (the default) selects the adaptive strided policy — the
    /// checker starts dense and widens the stride as windows deepen,
    /// replaying elided states from commit signatures on demand. A
    /// spec that knows its own cost balance can pin the stride
    /// instead: `Some(1)` retains every post-commit state and never
    /// replays (right when cloning is cheaper than re-applying even
    /// one commit); a wide stride retains almost nothing and replays
    /// freely (right when a commit re-apply is one cheap map update,
    /// so the adaptive policy's dense early-window cloning is pure
    /// overhead — the multiset family pins this). Values are clamped
    /// to the checker's stride bounds; digest-capable specs never
    /// consult this hint (digests are cheaper than either policy).
    fn snapshot_stride(&self) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[derive(Clone, Default)]
    struct Counter(BTreeMap<i64, i64>);

    impl Spec for Counter {
        fn kind(&self, method: &MethodId) -> MethodKind {
            if method.name() == "Get" {
                MethodKind::Observer
            } else {
                MethodKind::Mutator
            }
        }

        fn apply(
            &mut self,
            method: &MethodId,
            args: &[Value],
            _ret: &Value,
        ) -> Result<SpecEffect, SpecError> {
            let k = args[0].as_int().unwrap();
            match method.name() {
                "Inc" => {
                    *self.0.entry(k).or_insert(0) += 1;
                    Ok(SpecEffect::touching([k]))
                }
                other => Err(SpecError::new(format!("no such mutator: {other}"))),
            }
        }

        fn accepts_observation(&self, _m: &MethodId, args: &[Value], ret: &Value) -> bool {
            let k = args[0].as_int().unwrap();
            ret.as_int() == Some(self.0.get(&k).copied().unwrap_or(0))
        }

        fn view(&self) -> View {
            self.0
                .iter()
                .map(|(&k, &v)| (Value::from(k), Value::from(v)))
                .collect()
        }
    }

    #[test]
    fn default_view_of_agrees_with_view() {
        let mut c = Counter::default();
        c.apply(&MethodId::from("Inc"), &[Value::from(3i64)], &Value::Unit)
            .unwrap();
        assert_eq!(c.view_of(&Value::from(3i64)), Some(Value::from(1i64)));
        assert_eq!(c.view_of(&Value::from(4i64)), None);
    }

    #[test]
    fn apply_rejects_unknown_mutators() {
        let mut c = Counter::default();
        let err = c
            .apply(&MethodId::from("Dec"), &[Value::from(3i64)], &Value::Unit)
            .unwrap_err();
        assert!(err.message().contains("Dec"));
        assert!(err.to_string().contains("Dec"));
    }

    #[test]
    fn spec_effect_constructors() {
        assert!(SpecEffect::unchanged().dirty_keys.is_empty());
        let e = SpecEffect::touching([1i64, 2i64]);
        assert_eq!(e.dirty_keys, vec![Value::from(1i64), Value::from(2i64)]);
    }

    #[test]
    fn snapshots_are_independent() {
        let mut a = Counter::default();
        a.apply(&MethodId::from("Inc"), &[Value::from(1i64)], &Value::Unit)
            .unwrap();
        let snapshot = a.clone();
        a.apply(&MethodId::from("Inc"), &[Value::from(1i64)], &Value::Unit)
            .unwrap();
        assert!(snapshot.accepts_observation(
            &MethodId::from("Get"),
            &[Value::from(1i64)],
            &Value::from(1i64)
        ));
        assert!(a.accepts_observation(
            &MethodId::from("Get"),
            &[Value::from(1i64)],
            &Value::from(2i64)
        ));
    }
}
