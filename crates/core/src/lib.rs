//! # vyrd-core — runtime refinement-violation detection
//!
//! A Rust reproduction of the checking engine of **VYRD** (Elmas, Tasiran,
//! Qadeer — *"VYRD: VerifYing Concurrent Programs by Runtime
//! Refinement-Violation Detection"*, PLDI 2005).
//!
//! VYRD checks at runtime that a concurrently-accessed data structure
//! implementation *refines* an executable, method-atomic specification:
//! every trace of the implementation must be equivalent to some trace of
//! the specification. The technique has two phases:
//!
//! 1. **Logging** — the implementation is instrumented (see [`instrument`])
//!    to record call, return, commit, and (optionally) shared-variable
//!    write actions into a totally ordered [`log::EventLog`].
//! 2. **Checking** — a [`checker::Checker`], offline or on a separate
//!    verification thread ([`online`]), replays the log: mutator method
//!    executions are serialized in the order of their **commit actions**
//!    (the *witness interleaving*), and the [`spec::Spec`] is executed one
//!    method at a time with the observed arguments and return values.
//!
//! Two refinement notions are supported:
//!
//! * **I/O refinement** — call/return actions only ([`checker::Checker::io`]).
//! * **View refinement** — additionally compares a canonical [`view::View`]
//!   of the implementation state (reconstructed from the log by a
//!   [`replay::Replayer`]) against the specification's view at every commit
//!   ([`checker::Checker::view`]), giving much earlier error detection.
//!
//! ## Quick start
//!
//! ```
//! use vyrd_core::checker::Checker;
//! use vyrd_core::log::{EventLog, LogMode};
//! use vyrd_core::spec::{MethodKind, Spec, SpecEffect, SpecError};
//! use vyrd_core::view::View;
//! use vyrd_core::{MethodId, Value};
//! use std::collections::BTreeMap;
//!
//! // 1. An executable specification: an atomic multiset (Fig. 1).
//! #[derive(Clone, Default)]
//! struct MultisetSpec(BTreeMap<i64, u64>);
//!
//! impl Spec for MultisetSpec {
//!     fn kind(&self, m: &MethodId) -> MethodKind {
//!         if m.name() == "LookUp" { MethodKind::Observer } else { MethodKind::Mutator }
//!     }
//!     fn apply(&mut self, m: &MethodId, args: &[Value], ret: &Value)
//!         -> Result<SpecEffect, SpecError>
//!     {
//!         let x = args[0].as_int().ok_or_else(|| SpecError::new("non-int arg"))?;
//!         match m.name() {
//!             // Insert may succeed or fail; on success x joins the multiset.
//!             "Insert" => {
//!                 if ret.is_success() { *self.0.entry(x).or_insert(0) += 1; }
//!                 Ok(SpecEffect::touching([x]))
//!             }
//!             other => Err(SpecError::new(format!("unknown mutator {other}"))),
//!         }
//!     }
//!     fn accepts_observation(&self, _m: &MethodId, args: &[Value], ret: &Value) -> bool {
//!         let x = args[0].as_int().unwrap_or(0);
//!         ret.as_bool() == Some(self.0.get(&x).copied().unwrap_or(0) > 0)
//!     }
//!     fn view(&self) -> View {
//!         self.0.iter().map(|(&x, &n)| (Value::from(x), Value::from(n))).collect()
//!     }
//! }
//!
//! // 2. Log an execution (normally done by instrumented implementation code).
//! let log = EventLog::in_memory(LogMode::Io);
//! let t0 = log.logger();
//! t0.call("Insert", &[Value::from(3i64)]);
//! t0.commit();
//! t0.ret("Insert", Value::success());
//! t0.call("LookUp", &[Value::from(3i64)]);
//! t0.ret("LookUp", Value::from(true));
//!
//! // 3. Check it.
//! let report = Checker::io(MultisetSpec::default()).check_events(log.snapshot());
//! assert!(report.passed());
//! ```
//!
//! See the `vyrd-multiset`, `vyrd-javalib`, `vyrd-storage`, and
//! `vyrd-blinktree` crates for complete instrumented data structures with
//! specifications and replayers, and the `vyrd-harness`/`vyrd-bench`
//! crates for the paper's experiments.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod checker;
pub mod codec;
pub mod diagnose;
pub mod event;
pub mod instrument;
pub mod log;
pub mod metrics;
pub mod online;
pub mod overload;
pub mod pool;
pub mod replay;
pub mod segment;
pub mod shard;
pub mod spec;
pub mod value;
pub mod view;
pub mod violation;
pub mod witness;

pub use codec::DecodeOutcome;
pub use event::{Event, MethodId, ObjectId, ThreadId, VarId};
pub use log::{EventLog, LogMode, ThreadLogger};
pub use overload::{AdaptiveConfig, AdaptiveShed, ShedControl};
pub use pool::{ObjectChecker, SupervisorConfig, VerifierPool};
pub use segment::{ContinuousVerifier, SegmentConfig, SegmentLogHandle};
pub use shard::{OverloadPolicy, ShardConfig, ShardRouter};
pub use spec::{MethodKind, Spec, SpecEffect, SpecError};
pub use value::Value;
pub use view::View;
pub use violation::{
    AdaptiveAction, AdaptiveDecision, CheckStats, Degradation, Report, ShardFailure, ShedWindow,
    Verdict, Violation, WatchdogAction, WatchdogEvent,
};
