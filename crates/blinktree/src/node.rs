//! B-link tree nodes (§7.2.3–§7.2.5, following Sagiv's design [12]).
//!
//! Three node kinds:
//!
//! * **internal** nodes — the "indexing structure": separator keys and
//!   child pointers. Abstracted away by `view_I` (§7.2.4), so their writes
//!   are never logged.
//! * **leaf pointer** nodes — sorted `(key, data-node)` pairs. The leaf
//!   level is a singly linked chain via *right pointers*; the leftmost
//!   leaf (node 0) never changes, so a left-to-right traversal of the
//!   chain enumerates the whole abstract contents.
//! * **data** nodes — one `(key, data, version)` record each; the version
//!   increments on every overwrite (Boxwood shared variables carry
//!   versions, §7.2).
//!
//! Every node carries a **high key** (inclusive upper bound) and a right
//! link; an operation positioned at a node whose high key is below its
//! target "moves right" — the mechanism that makes half-finished splits
//! harmless.

use vyrd_core::Value;

/// Index of a node in the tree's arena.
pub type NodeId = usize;

/// Maximum number of entries in a leaf / separators in an internal node.
/// Small on purpose: splits (and their races) happen early.
pub const MAX_KEYS: usize = 4;

/// Contents of one tree node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeContent {
    /// An internal (index) node.
    Internal {
        /// Separator keys `s_0 < s_1 < ...`; child `i` covers keys
        /// `<= s_i`, the last child covers `(s_last, high]`.
        keys: Vec<i64>,
        /// Child node ids (`keys.len() + 1` of them).
        children: Vec<NodeId>,
        /// Inclusive upper bound of this node's key range.
        high: i64,
        /// Right sibling at the same level.
        right: Option<NodeId>,
    },
    /// A leaf pointer node.
    Leaf {
        /// Sorted `(key, data-node id)` pairs.
        entries: Vec<(i64, NodeId)>,
        /// Inclusive upper bound of this node's key range.
        high: i64,
        /// Right sibling leaf.
        right: Option<NodeId>,
    },
    /// A data node.
    Data {
        /// The key this record belongs to.
        key: i64,
        /// The stored datum.
        data: i64,
        /// Write count for this data node.
        version: u64,
    },
}

impl NodeContent {
    /// A fresh empty, rightmost leaf.
    pub fn empty_leaf() -> NodeContent {
        NodeContent::Leaf {
            entries: Vec::new(),
            high: i64::MAX,
            right: None,
        }
    }

    /// Encodes a leaf for the log: `[[ (key, dataId), ... ], right]`.
    ///
    /// Only leaves and data nodes are logged — `supp(view_I)` per §7.2.4.
    ///
    /// # Panics
    ///
    /// Panics when called on a non-leaf.
    pub fn encode_leaf(&self) -> Value {
        match self {
            NodeContent::Leaf { entries, right, .. } => {
                let pairs: Value = entries
                    .iter()
                    .map(|&(k, d)| Value::pair(Value::from(k), Value::from(d as i64)))
                    .collect();
                Value::List(vec![pairs, Value::from(right.map(|r| r as i64))])
            }
            other => panic!("encode_leaf on non-leaf node {other:?}"),
        }
    }

    /// Encodes a data node for the log: `[key, data, version]`.
    ///
    /// # Panics
    ///
    /// Panics when called on a non-data node.
    pub fn encode_data(&self) -> Value {
        match self {
            NodeContent::Data { key, data, version } => Value::List(vec![
                Value::from(*key),
                Value::from(*data),
                Value::from(*version),
            ]),
            other => panic!("encode_data on non-data node {other:?}"),
        }
    }
}

/// A decoded leaf record: sorted `(key, data-node id)` entries plus the
/// right link.
pub type LeafRecord = (Vec<(i64, NodeId)>, Option<NodeId>);

/// Decodes a logged leaf record back into `(entries, right)`.
///
/// Returns `None` on malformed records (a corrupt log).
pub fn decode_leaf(value: &Value) -> Option<LeafRecord> {
    let items = value.as_list()?;
    let [pairs, right] = items else { return None };
    let mut entries = Vec::new();
    for p in pairs.as_list()? {
        let (k, d) = p.as_pair()?;
        entries.push((k.as_int()?, usize::try_from(d.as_int()?).ok()?));
    }
    let right = match right {
        Value::Unit => None,
        other => Some(usize::try_from(other.as_int()?).ok()?),
    };
    Some((entries, right))
}

/// Decodes a logged data record back into `(key, data, version)`.
pub fn decode_data(value: &Value) -> Option<(i64, i64, u64)> {
    let items = value.as_list()?;
    let [key, data, version] = items else {
        return None;
    };
    Some((
        key.as_int()?,
        data.as_int()?,
        u64::try_from(version.as_int()?).ok()?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_round_trip() {
        let leaf = NodeContent::Leaf {
            entries: vec![(10, 3), (20, 5)],
            high: 25,
            right: Some(7),
        };
        let (entries, right) = decode_leaf(&leaf.encode_leaf()).unwrap();
        assert_eq!(entries, vec![(10, 3), (20, 5)]);
        assert_eq!(right, Some(7));

        let rightmost = NodeContent::empty_leaf();
        let (entries, right) = decode_leaf(&rightmost.encode_leaf()).unwrap();
        assert!(entries.is_empty());
        assert_eq!(right, None);
    }

    #[test]
    fn data_round_trip() {
        let d = NodeContent::Data {
            key: 42,
            data: 99,
            version: 3,
        };
        assert_eq!(decode_data(&d.encode_data()), Some((42, 99, 3)));
    }

    #[test]
    fn decode_rejects_malformed_records() {
        assert!(decode_leaf(&Value::Unit).is_none());
        assert!(decode_leaf(&Value::List(vec![Value::Unit])).is_none());
        assert!(decode_data(&Value::List(vec![Value::from(1i64)])).is_none());
        assert!(decode_data(&Value::from("data")).is_none());
    }

    #[test]
    #[should_panic(expected = "encode_leaf on non-leaf")]
    fn encode_leaf_panics_on_data_node() {
        NodeContent::Data {
            key: 0,
            data: 0,
            version: 0,
        }
        .encode_leaf();
    }
}
