//! The concurrent B-link tree (§7.2.3, Fig. 9).
//!
//! Concurrency discipline (after Sagiv [12]):
//!
//! * Descents hold at most one node lock at a time; stale routing is
//!   repaired by *moving right* whenever the target key exceeds a node's
//!   high key, so a half-finished split (new sibling linked, parent not
//!   yet updated) is never harmful.
//! * Inserts remember the internal descent path on a stack
//!   (`MOVE-DOWN-AND-STACK` of Fig. 9) and ascend it to install separator
//!   keys after a split; the tree is fully usable in between.
//! * An internal **compression thread** merges underfull adjacent leaves
//!   and rebuilds the indexing structure. It runs under an exclusive
//!   structure gate (the same pattern as Boxwood's `RECLAIMLOCK`) and is
//!   checked — per §7.2.3 — to leave the abstract contents (`view_I`)
//!   unchanged.
//!
//! Commit points follow §7.2.5: the effect of every mutator is a single
//! write to a leaf or data node, while the remaining writes merely
//! restructure the tree. Fig. 9's four conditional commit points for
//! `INSERT` map to: overwrite of an existing key (point 1), plain leaf
//! insert (point 2), and leaf split — non-root or root (points 3/4; the
//! data-bearing write is the same here because only the leaf chain
//! carries data).
//!
//! [`BLinkVariant::DuplicateDataNodes`] reproduces the Table 1 bug
//! "allowing duplicated data nodes": the insert skips the move-right
//! re-validation after locking its (possibly stale) target leaf, so a
//! concurrent split can leave the same key present in two leaves.

use std::sync::Arc;

use vyrd_rt::sync::{ArcLockExt as _, ArcMutexGuard, Mutex, RwLock};
use vyrd_core::instrument::{BlockGuard, MethodSession};
use vyrd_core::log::{EventLog, ThreadLogger};
use vyrd_core::{Value, VarId};

use crate::node::{NodeContent, NodeId, MAX_KEYS};

type Guard = ArcMutexGuard<NodeContent>;

/// Which insert discipline to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BLinkVariant {
    /// Full move-right re-validation after locking the target leaf.
    #[default]
    Correct,
    /// The re-validation is skipped: a stale leaf is mutated even when a
    /// concurrent split moved the key range (and possibly the key itself)
    /// to a right sibling — duplicating data nodes.
    DuplicateDataNodes,
}

#[derive(Debug)]
struct Node {
    content: Arc<Mutex<NodeContent>>,
}

#[derive(Debug)]
struct Inner {
    /// Append-only node arena. Node 0 is the leftmost leaf, forever.
    nodes: RwLock<Vec<Node>>,
    /// The current root (changes on root splits and compression).
    root: Mutex<NodeId>,
    /// Read = an operation is in flight; write = compression may
    /// restructure.
    gate: RwLock<()>,
    variant: BLinkVariant,
    log: EventLog,
}

/// The concurrent B-link tree storing `(key, data)` pairs.
///
/// # Examples
///
/// ```
/// use vyrd_core::log::{EventLog, LogMode};
/// use vyrd_blinktree::{BLinkTree, BLinkVariant};
///
/// let log = EventLog::in_memory(LogMode::Io);
/// let tree = BLinkTree::new(BLinkVariant::Correct, log);
/// let h = tree.handle();
/// for k in 0..20 {
///     h.insert(k, k * 10);
/// }
/// assert_eq!(h.lookup(7), Some(70));
/// assert!(h.delete(7));
/// assert_eq!(h.lookup(7), None);
/// ```
#[derive(Clone, Debug)]
pub struct BLinkTree {
    inner: Arc<Inner>,
}

impl BLinkTree {
    /// Creates an empty tree.
    pub fn new(variant: BLinkVariant, log: EventLog) -> BLinkTree {
        BLinkTree {
            inner: Arc::new(Inner {
                nodes: RwLock::new(vec![Node {
                    content: Arc::new(Mutex::new(NodeContent::empty_leaf())),
                }]),
                root: Mutex::new(0),
                gate: RwLock::new(()),
                variant,
                log,
            }),
        }
    }

    /// The event log this tree records into.
    pub fn log(&self) -> &EventLog {
        &self.inner.log
    }

    /// Creates a per-thread handle with a fresh thread id.
    pub fn handle(&self) -> BLinkTreeHandle {
        BLinkTreeHandle {
            tree: self.clone(),
            logger: self.inner.log.logger(),
        }
    }

    /// Number of allocated nodes (all kinds), for tests and diagnostics.
    pub fn node_count(&self) -> usize {
        self.inner.nodes.read().len()
    }
}

/// Per-thread access to a [`BLinkTree`].
#[derive(Clone, Debug)]
pub struct BLinkTreeHandle {
    tree: BLinkTree,
    logger: ThreadLogger,
}

impl BLinkTreeHandle {
    fn lock_node(&self, id: NodeId) -> Guard {
        let arc = Arc::clone(&self.tree.inner.nodes.read()[id].content);
        arc.lock_arc()
    }

    fn alloc(&self, content: NodeContent) -> NodeId {
        let mut nodes = self.tree.inner.nodes.write();
        let id = nodes.len();
        nodes.push(Node {
            content: Arc::new(Mutex::new(content)),
        });
        id
    }

    fn log_leaf(&self, id: NodeId, content: &NodeContent) {
        self.logger
            .write(VarId::new("leaf", id as i64), content.encode_leaf());
    }

    fn log_data(&self, id: NodeId, content: &NodeContent) {
        self.logger
            .write(VarId::new("data", id as i64), content.encode_data());
    }

    /// Routes `key` one level down an internal node (which must cover
    /// `key`).
    fn route(keys: &[i64], children: &[NodeId], key: i64) -> NodeId {
        for (i, &s) in keys.iter().enumerate() {
            if key <= s {
                return children[i];
            }
        }
        *children.last().expect("internal node has children")
    }

    /// `MOVE-DOWN-AND-STACK` (Fig. 9 line 5): descends to a leaf that
    /// covered `key` at observation time, recording the internal path.
    /// Holds no lock across steps.
    fn descend(&self, key: i64) -> (NodeId, Vec<NodeId>) {
        let mut stack = Vec::new();
        let mut cur = *self.tree.inner.root.lock();
        loop {
            let content = self.lock_node(cur);
            match &*content {
                NodeContent::Internal {
                    keys,
                    children,
                    high,
                    right,
                    ..
                } => {
                    if key > *high {
                        cur = right.expect("non-rightmost node has a right link");
                    } else {
                        stack.push(cur);
                        cur = Self::route(keys, children, key);
                    }
                }
                NodeContent::Leaf { high, right, .. } => {
                    if key > *high {
                        cur = right.expect("non-rightmost leaf has a right link");
                    } else {
                        return (cur, stack);
                    }
                }
                NodeContent::Data { .. } => unreachable!("descent reached a data node"),
            }
        }
    }

    /// Locks the leaf that covers `key`, starting at `start` and moving
    /// right as needed. With `revalidate = false` (the bug), `start` is
    /// locked and returned unconditionally.
    fn lock_covering_leaf(&self, start: NodeId, key: i64, revalidate: bool) -> (NodeId, Guard) {
        let mut cur = start;
        loop {
            let guard = self.lock_node(cur);
            let NodeContent::Leaf { high, right, .. } = &*guard else {
                unreachable!("leaf chain contains only leaves")
            };
            if !revalidate || key <= *high {
                return (cur, guard);
            }
            let next = right.expect("covering leaf exists to the right");
            drop(guard);
            cur = next;
        }
    }

    /// `LOOKUP(key)` — observer. Returns the stored datum, if any.
    pub fn lookup(&self, key: i64) -> Option<i64> {
        let _lease = self.tree.inner.gate.read();
        let session = MethodSession::enter(&self.logger, "Lookup", &[Value::from(key)]);
        let (leaf, _) = self.descend(key);
        let (_, guard) = self.lock_covering_leaf(leaf, key, true);
        let NodeContent::Leaf { entries, .. } = &*guard else {
            unreachable!()
        };
        let found = entries.iter().find(|&&(k, _)| k == key).map(|&(_, did)| {
            let data_guard = self.lock_node(did);
            let NodeContent::Data { data, .. } = &*data_guard else {
                unreachable!("leaf entries point at data nodes")
            };
            *data
        });
        drop(guard);
        session.exit(Value::from(found));
        found
    }

    /// `INSERT(key, data)` (Fig. 9): stores `data` under `key`,
    /// overwriting any previous datum.
    pub fn insert(&self, key: i64, data: i64) {
        let _lease = self.tree.inner.gate.read();
        let args = [Value::from(key), Value::from(data)];
        let mut session = MethodSession::enter(&self.logger, "Insert", &args);
        let (leaf, stack) = self.descend(key);
        let revalidate = self.tree.inner.variant == BLinkVariant::Correct;
        if !revalidate {
            // BUG window: between the (unlocked) descent and taking the
            // leaf lock, a concurrent split can move this key's range —
            // and possibly the key itself — to a right sibling. The
            // correct variant repairs this by re-checking under the lock;
            // the buggy variant proceeds on stale information.
            std::thread::yield_now();
        }
        let (leaf_id, mut guard) = self.lock_covering_leaf(leaf, key, revalidate);

        let NodeContent::Leaf { entries, .. } = &*guard else {
            unreachable!()
        };
        if let Some(&(_, data_id)) = entries.iter().find(|&&(k, _)| k == key) {
            // Fig. 9 lines 12–17, commit point 1: the key exists; the
            // single data-node overwrite is the whole effect.
            let mut data_guard = self.lock_node(data_id);
            let NodeContent::Data {
                data: stored,
                version,
                ..
            } = &mut *data_guard
            else {
                unreachable!("leaf entries point at data nodes")
            };
            *stored = data;
            *version += 1;
            let block = BlockGuard::enter(&self.logger);
            self.log_data(data_id, &data_guard);
            session.commit(); // Commit point 1
            drop(block);
            drop(data_guard);
            drop(guard);
            session.exit(Value::Unit);
            return;
        }

        let data_id = self.alloc(NodeContent::Data {
            key,
            data,
            version: 1,
        });
        let NodeContent::Leaf {
            entries,
            high,
            right,
        } = &mut *guard
        else {
            unreachable!()
        };
        let pos = entries.partition_point(|&(k, _)| k < key);
        if entries.len() < MAX_KEYS {
            // Fig. 9 lines 34–40, commit point 2: safe insert.
            entries.insert(pos, (key, data_id));
            let block = BlockGuard::enter(&self.logger);
            self.log_data(data_id, &self.read_node(data_id));
            self.log_leaf(leaf_id, &guard);
            session.commit(); // Commit point 2
            drop(block);
            drop(guard);
            session.exit(Value::Unit);
            return;
        }

        // Fig. 9 lines 41–52, commit points 3/4: split, then insert the
        // separator into the parent level (after the commit — the tree is
        // valid half-split thanks to the right links).
        entries.insert(pos, (key, data_id));
        let mid = entries.len() / 2;
        let split_key = entries[mid - 1].0;
        let new_leaf = NodeContent::Leaf {
            entries: entries.split_off(mid),
            high: *high,
            right: *right,
        };
        *high = split_key;
        let new_id = self.alloc(new_leaf);
        *right = Some(new_id);
        let block = BlockGuard::enter(&self.logger);
        self.log_data(data_id, &self.read_node(data_id));
        // Log the new sibling before the node that links to it, so the
        // replayed chain never dangles.
        self.log_leaf(new_id, &self.read_node(new_id));
        self.log_leaf(leaf_id, &guard);
        session.commit(); // Commit points 3/4
        drop(block);
        drop(guard);

        self.ascend(stack, split_key, leaf_id, new_id);
        session.exit(Value::Unit);
    }

    /// Reads a snapshot of a node (transient lock).
    fn read_node(&self, id: NodeId) -> NodeContent {
        self.lock_node(id).clone()
    }

    /// Installs separators up the tree after splits, creating a new root
    /// when the old one split.
    ///
    /// Bounded: if the parent level cannot be located after a few
    /// attempts (reachable only when a bug variant has corrupted key
    /// ranges), the separator is abandoned rather than spinning — the
    /// tree stays *correct* through its right links (searches move right
    /// past the missing separator), only search paths lengthen.
    fn ascend(&self, mut stack: Vec<NodeId>, mut sep: i64, mut left: NodeId, mut new_id: NodeId) {
        let mut failed_lookups = 0;
        loop {
            let parent = match stack.pop() {
                Some(p) => p,
                None => {
                    // `left` was the topmost node the descent saw. If it
                    // is still the root, grow the tree; otherwise another
                    // thread grew it first — locate `left`'s parent level.
                    let mut root = self.tree.inner.root.lock();
                    if *root == left {
                        let new_root = self.alloc(NodeContent::Internal {
                            keys: vec![sep],
                            children: vec![left, new_id],
                            high: i64::MAX,
                            right: None,
                        });
                        *root = new_root;
                        return;
                    }
                    drop(root);
                    match self.find_parent(sep, left) {
                        Some(p) => p,
                        None => {
                            failed_lookups += 1;
                            if failed_lookups >= 5 {
                                return; // abandon the separator; see doc above
                            }
                            std::thread::yield_now();
                            continue;
                        }
                    }
                }
            };
            match self.add_separator(parent, sep, new_id) {
                SeparatorOutcome::Done => return,
                SeparatorOutcome::Split {
                    promote,
                    left: l,
                    new: n,
                } => {
                    sep = promote;
                    left = l;
                    new_id = n;
                }
            }
        }
    }

    /// Finds the internal node that currently has `left` among its
    /// children, by walking the level just above `left` rightwards from
    /// the routing position of `sep`.
    fn find_parent(&self, sep: i64, left: NodeId) -> Option<NodeId> {
        // Descend from the root, following sep, collecting candidates at
        // every internal level; then scan each candidate level rightwards
        // for the node containing `left`.
        let mut cur = *self.tree.inner.root.lock();
        let mut levels = Vec::new();
        loop {
            let guard = self.lock_node(cur);
            match &*guard {
                NodeContent::Internal {
                    keys,
                    children,
                    high,
                    right,
                    ..
                } => {
                    if sep > *high {
                        cur = right.expect("non-rightmost node has a right link");
                        continue;
                    }
                    levels.push(cur);
                    cur = Self::route(keys, children, sep);
                }
                NodeContent::Leaf { .. } => break,
                NodeContent::Data { .. } => unreachable!(),
            }
        }
        // Scan levels bottom-up: the parent of `left` is usually the
        // lowest candidate.
        for &candidate in levels.iter().rev() {
            let mut cur = candidate;
            loop {
                let guard = self.lock_node(cur);
                let NodeContent::Internal {
                    children, right, ..
                } = &*guard
                else {
                    break;
                };
                if children.contains(&left) {
                    return Some(cur);
                }
                match right {
                    Some(r) => {
                        let r = *r;
                        drop(guard);
                        cur = r;
                    }
                    None => break,
                }
            }
        }
        None
    }

    /// Installs `(sep, new_id)` into the internal level of `parent`:
    /// moves right until the node covers `sep`, then inserts in key order
    /// (the Lehman–Yao discipline — positioning by child identity is
    /// wrong once concurrent splits have reshuffled ranges).
    fn add_separator(&self, parent: NodeId, sep: i64, new_id: NodeId) -> SeparatorOutcome {
        let mut cur = parent;
        loop {
            let mut guard = self.lock_node(cur);
            let NodeContent::Internal {
                keys,
                children,
                high,
                right,
                ..
            } = &mut *guard
            else {
                unreachable!("separators go into internal nodes")
            };
            if sep > *high {
                let next = right.expect("covering node exists to the right");
                drop(guard);
                cur = next;
                continue;
            }
            let pos = keys.partition_point(|&s| s < sep);
            keys.insert(pos, sep);
            children.insert(pos + 1, new_id);
            if keys.len() <= MAX_KEYS {
                return SeparatorOutcome::Done;
            }
            // Split this internal node; promote the middle separator.
            let mid = keys.len() / 2;
            let promote = keys[mid];
            let sibling = NodeContent::Internal {
                keys: keys.split_off(mid + 1),
                children: children.split_off(mid + 1),
                high: *high,
                right: *right,
            };
            keys.pop(); // `promote` moves up, not right
            *high = promote;
            let sibling_id = self.alloc(sibling);
            *right = Some(sibling_id);
            return SeparatorOutcome::Split {
                promote,
                left: cur,
                new: sibling_id,
            };
        }
    }

    /// `DELETE(key)`: removes the key's entry from its leaf; returns
    /// whether it was present. The data node is left orphaned (the
    /// compression pass never resurrects it).
    pub fn delete(&self, key: i64) -> bool {
        let _lease = self.tree.inner.gate.read();
        let mut session = MethodSession::enter(&self.logger, "Delete", &[Value::from(key)]);
        let (leaf, _) = self.descend(key);
        let (leaf_id, mut guard) = self.lock_covering_leaf(leaf, key, true);
        let NodeContent::Leaf { entries, .. } = &mut *guard else {
            unreachable!()
        };
        let found = match entries.iter().position(|&(k, _)| k == key) {
            Some(pos) => {
                entries.remove(pos);
                let block = BlockGuard::enter(&self.logger);
                self.log_leaf(leaf_id, &guard);
                session.commit();
                drop(block);
                true
            }
            None => {
                session.commit();
                false
            }
        };
        drop(guard);
        session.exit(Value::from(found));
        found
    }

    /// One compression pass (§7.2.3): merges adjacent underfull leaves
    /// and rebuilds the indexing structure from the leaf chain.
    ///
    /// Runs under the exclusive structure gate; logged as a `Compress`
    /// mutator so view refinement verifies the abstract contents are
    /// untouched.
    pub fn compress(&self) {
        let _gate = self.tree.inner.gate.write();
        let mut session = MethodSession::enter(&self.logger, "Compress", &[]);
        let block = BlockGuard::enter(&self.logger);

        // Merge pass over the leaf chain.
        let mut cur: NodeId = 0;
        loop {
            let mut guard = self.lock_node(cur);
            let NodeContent::Leaf {
                entries,
                high,
                right,
            } = &mut *guard
            else {
                unreachable!("the leaf chain contains only leaves")
            };
            let Some(next) = *right else { break };
            let sibling = self.read_node(next);
            let NodeContent::Leaf {
                entries: sib_entries,
                high: sib_high,
                right: sib_right,
            } = sibling
            else {
                unreachable!()
            };
            if entries.len() + sib_entries.len() <= MAX_KEYS {
                entries.extend(sib_entries);
                *high = sib_high;
                *right = sib_right;
                self.log_leaf(cur, &guard);
                // Loop again from the same node: it may absorb more.
            } else {
                drop(guard);
                cur = next;
            }
        }

        // Rebuild the indexing structure bottom-up from the (merged)
        // leaf chain. Internal nodes are view-irrelevant, so none of this
        // is logged.
        let mut level: Vec<(NodeId, i64)> = Vec::new();
        let mut cur = 0;
        loop {
            let guard = self.lock_node(cur);
            let NodeContent::Leaf { high, right, .. } = &*guard else {
                unreachable!()
            };
            level.push((cur, *high));
            match right {
                Some(r) => {
                    let r = *r;
                    drop(guard);
                    cur = r;
                }
                None => break,
            }
        }
        while level.len() > 1 {
            let mut next_level = Vec::new();
            let mut chunk_ids = Vec::new();
            for group in level.chunks(MAX_KEYS + 1) {
                let keys: Vec<i64> = group[..group.len() - 1].iter().map(|&(_, h)| h).collect();
                let children: Vec<NodeId> = group.iter().map(|&(id, _)| id).collect();
                let high = group.last().expect("non-empty group").1;
                let id = self.alloc(NodeContent::Internal {
                    keys,
                    children,
                    high,
                    right: None, // linked below
                });
                chunk_ids.push((id, high));
            }
            // Link right pointers across the new level.
            for w in chunk_ids.windows(2) {
                let mut guard = self.lock_node(w[0].0);
                if let NodeContent::Internal { right, .. } = &mut *guard {
                    *right = Some(w[1].0);
                }
            }
            next_level.extend(chunk_ids);
            level = next_level;
        }
        *self.tree.inner.root.lock() = level[0].0;

        session.commit();
        drop(block);
        session.exit(Value::Unit);
    }
}

enum SeparatorOutcome {
    Done,
    Split {
        promote: i64,
        left: NodeId,
        new: NodeId,
    },
}
