//! Specification of the B-link tree: an atomic ordered map with
//! per-key version numbers (§7.2.4 includes versions in the view).

use std::collections::BTreeMap;

use vyrd_core::spec::{MethodKind, Spec, SpecEffect, SpecError};
use vyrd_core::view::View;
use vyrd_core::{MethodId, Value};

/// Atomic map specification: `Insert` stores/overwrites, `Delete`
/// removes, `Lookup` observes, `Compress` must not change the contents.
///
/// The view entry for key `k` is a *list* of `(data, version)` pairs —
/// a singleton in every specification state. The implementation view
/// lists every reachable data node for `k` in leaf-chain order, so the
/// "duplicated data nodes" bug shows up as a two-element list (§7.2.3's
/// manually inserted bug).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BLinkSpec {
    map: BTreeMap<i64, (i64, u64)>,
}

impl BLinkSpec {
    /// Creates an empty map specification.
    pub fn new() -> BLinkSpec {
        BLinkSpec::default()
    }

    /// Current `(data, version)` stored under `key`.
    pub fn get(&self, key: i64) -> Option<(i64, u64)> {
        self.map.get(&key).copied()
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn int_arg(args: &[Value], i: usize) -> Result<i64, SpecError> {
        args.get(i)
            .and_then(Value::as_int)
            .ok_or_else(|| SpecError::new(format!("argument {i} is not an integer")))
    }

    fn entry_value(data: i64, version: u64) -> Value {
        Value::List(vec![Value::pair(Value::from(data), Value::from(version))])
    }
}

impl Spec for BLinkSpec {
    fn kind(&self, method: &MethodId) -> MethodKind {
        if method.name() == "Lookup" {
            MethodKind::Observer
        } else {
            MethodKind::Mutator
        }
    }

    fn apply(
        &mut self,
        method: &MethodId,
        args: &[Value],
        ret: &Value,
    ) -> Result<SpecEffect, SpecError> {
        match method.name() {
            "Insert" => {
                let key = Self::int_arg(args, 0)?;
                let data = Self::int_arg(args, 1)?;
                // Overwrites bump the data node's version; fresh inserts
                // start at 1 (a delete + reinsert allocates a new data
                // node, so the version restarts).
                let version = match self.map.get(&key) {
                    Some(&(_, v)) => v + 1,
                    None => 1,
                };
                self.map.insert(key, (data, version));
                Ok(SpecEffect::touching([key]))
            }
            "Delete" => {
                let key = Self::int_arg(args, 0)?;
                match ret.as_bool() {
                    Some(true) => {
                        if self.map.remove(&key).is_some() {
                            Ok(SpecEffect::touching([key]))
                        } else {
                            Err(SpecError::new(format!(
                                "Delete({key}) returned true but {key} is not stored"
                            )))
                        }
                    }
                    // An unproductive delete is always permitted and
                    // leaves the map unchanged.
                    Some(false) => Ok(SpecEffect::unchanged()),
                    None => Err(SpecError::new(format!(
                        "Delete returns a boolean, not {ret}"
                    ))),
                }
            }
            "Compress" => {
                if ret.is_unit() {
                    Ok(SpecEffect::unchanged())
                } else {
                    Err(SpecError::new(format!("Compress returns unit, not {ret}")))
                }
            }
            other => Err(SpecError::new(format!("unknown mutator {other}"))),
        }
    }

    fn accepts_observation(&self, method: &MethodId, args: &[Value], ret: &Value) -> bool {
        if method.name() != "Lookup" {
            return false;
        }
        let Some(key) = args.first().and_then(Value::as_int) else {
            return false;
        };
        match self.map.get(&key) {
            Some(&(data, _)) => ret.as_int() == Some(data),
            None => ret.is_unit(),
        }
    }

    fn view(&self) -> View {
        self.map
            .iter()
            .map(|(&k, &(d, v))| (Value::from(k), Self::entry_value(d, v)))
            .collect()
    }

    fn view_of(&self, key: &Value) -> Option<Value> {
        let k = key.as_int()?;
        self.map.get(&k).map(|&(d, v)| Self::entry_value(d, v))
    }

    fn save_state(&self) -> Option<Value> {
        Some(Value::List(
            self.map
                .iter()
                .map(|(&k, &(d, v))| {
                    Value::List(vec![Value::from(k), Value::from(d), Value::from(v)])
                })
                .collect(),
        ))
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), SpecError> {
        let entries = state
            .as_list()
            .ok_or_else(|| SpecError::new("b-link state must be a list"))?;
        let mut map = BTreeMap::new();
        for entry in entries {
            let parsed = entry.as_list().and_then(|triple| match triple {
                [k, d, v] => Some((k.as_int()?, (d.as_int()?, u64::try_from(v.as_int()?).ok()?))),
                _ => None,
            });
            let (k, dv) = parsed
                .ok_or_else(|| SpecError::new("b-link entry must be a (key, data, version) triple"))?;
            map.insert(k, dv);
        }
        self.map = map;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(name: &str) -> MethodId {
        MethodId::from(name)
    }

    fn ints(xs: &[i64]) -> Vec<Value> {
        xs.iter().map(|&x| Value::from(x)).collect()
    }

    #[test]
    fn insert_overwrites_and_versions() {
        let mut s = BLinkSpec::new();
        s.apply(&m("Insert"), &ints(&[5, 50]), &Value::Unit).unwrap();
        assert_eq!(s.get(5), Some((50, 1)));
        s.apply(&m("Insert"), &ints(&[5, 55]), &Value::Unit).unwrap();
        assert_eq!(s.get(5), Some((55, 2)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn delete_then_reinsert_restarts_versions() {
        let mut s = BLinkSpec::new();
        s.apply(&m("Insert"), &ints(&[5, 50]), &Value::Unit).unwrap();
        s.apply(&m("Insert"), &ints(&[5, 51]), &Value::Unit).unwrap();
        s.apply(&m("Delete"), &ints(&[5]), &Value::from(true)).unwrap();
        assert!(s.is_empty());
        s.apply(&m("Insert"), &ints(&[5, 52]), &Value::Unit).unwrap();
        assert_eq!(s.get(5), Some((52, 1)));
    }

    #[test]
    fn delete_true_requires_presence_false_is_free() {
        let mut s = BLinkSpec::new();
        assert!(s
            .apply(&m("Delete"), &ints(&[9]), &Value::from(true))
            .is_err());
        s.apply(&m("Delete"), &ints(&[9]), &Value::from(false))
            .unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn lookup_observations() {
        let mut s = BLinkSpec::new();
        s.apply(&m("Insert"), &ints(&[7, 70]), &Value::Unit).unwrap();
        assert!(s.accepts_observation(&m("Lookup"), &ints(&[7]), &Value::from(70i64)));
        assert!(!s.accepts_observation(&m("Lookup"), &ints(&[7]), &Value::from(71i64)));
        assert!(s.accepts_observation(&m("Lookup"), &ints(&[8]), &Value::Unit));
        assert!(!s.accepts_observation(&m("Insert"), &ints(&[7]), &Value::from(70i64)));
    }

    #[test]
    fn view_entries_are_singleton_lists() {
        let mut s = BLinkSpec::new();
        s.apply(&m("Insert"), &ints(&[3, 30]), &Value::Unit).unwrap();
        let entry = s.view_of(&Value::from(3i64)).unwrap();
        let items = entry.as_list().unwrap();
        assert_eq!(items.len(), 1);
        let (d, v) = items[0].as_pair().unwrap();
        assert_eq!((d.as_int(), v.as_int()), (Some(30), Some(1)));
        assert_eq!(s.view().len(), 1);
    }

    #[test]
    fn compress_is_a_no_op() {
        let mut s = BLinkSpec::new();
        s.apply(&m("Insert"), &ints(&[1, 10]), &Value::Unit).unwrap();
        let before = s.clone();
        s.apply(&m("Compress"), &[], &Value::Unit).unwrap();
        assert_eq!(s, before);
        assert!(s.apply(&m("Compress"), &[], &Value::from(0i64)).is_err());
    }
}
