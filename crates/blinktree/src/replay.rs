//! Replayer for the B-link tree (§7.2.4).
//!
//! "`view_I` was defined to be the sorted list of all the (key, data)
//! pairs in the tree, along with their version numbers. ... The list was
//! computed by a left to right traversal of the leaf pointer nodes ...
//! The non-data nodes form an indexing structure ... but their structure
//! is abstracted in the computation of `view_I`."
//!
//! Only leaf and data node writes are logged (`supp(view_I)`); replay
//! reconstructs the leaf chain and extracts the view by walking it from
//! the leftmost leaf (node 0).

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use vyrd_core::replay::Replayer;
use vyrd_core::view::View;
use vyrd_core::{Value, VarId};

use crate::node::{decode_data, decode_leaf, LeafRecord, NodeId};

/// The materialized view: per key, every reachable `(data, version)`
/// record in traversal order.
type KeyRecords = BTreeMap<i64, Vec<(i64, u64)>>;

/// Shadow state for the B-link tree leaf level.
///
/// The §6.4 incremental protocol: every write marks precisely the keys it
/// can affect —
///
/// * a data-node write dirties that record's key;
/// * a leaf write dirties the keys added to / removed from that leaf
///   (diff of the old and new entry lists), plus every key of any leaf
///   whose *reachability from node 0* changed (splits publish a new
///   sibling, merges bypass one);
///
/// and the view is materialized by at most one chain traversal per
/// commit (cached until the next write).
#[derive(Debug)]
pub struct BLinkReplayer {
    /// leaf id -> (entries, right link).
    leaves: HashMap<NodeId, LeafRecord>,
    /// data node id -> (key, data, version).
    data: HashMap<NodeId, (i64, i64, u64)>,
    /// Leaves currently reachable from node 0 along right links.
    reachable: BTreeSet<NodeId>,
    /// Keys whose view entries may have changed since the last commit.
    dirty: BTreeSet<i64>,
    /// Materialized view, invalidated by writes.
    cache: std::cell::RefCell<Option<KeyRecords>>,
}

impl Default for BLinkReplayer {
    fn default() -> BLinkReplayer {
        BLinkReplayer::new()
    }
}

impl BLinkReplayer {
    /// Creates the shadow state of an empty tree (one empty leftmost
    /// leaf, node 0).
    pub fn new() -> BLinkReplayer {
        BLinkReplayer {
            leaves: HashMap::from([(0, (Vec::new(), None))]),
            data: HashMap::new(),
            reachable: BTreeSet::from([0]),
            dirty: BTreeSet::new(),
            cache: std::cell::RefCell::new(None),
        }
    }

    /// The leaves reachable from node 0 along right links (cycle-safe).
    fn compute_reachable(&self) -> BTreeSet<NodeId> {
        let mut out = BTreeSet::new();
        let mut cur = Some(0);
        while let Some(id) = cur {
            if !out.insert(id) {
                break; // corrupt chain with a cycle: stop, let views differ
            }
            match self.leaves.get(&id) {
                Some((_, right)) => cur = *right,
                None => break, // dangling right link (corrupt log)
            }
        }
        out
    }

    /// Walks the leaf chain, collecting every reachable `(data, version)`
    /// record per key, in traversal order.
    fn collect(&self) -> KeyRecords {
        let mut out: BTreeMap<i64, Vec<(i64, u64)>> = BTreeMap::new();
        let mut cur = Some(0);
        let mut visited = HashSet::new();
        while let Some(id) = cur {
            if !visited.insert(id) {
                break;
            }
            let Some((entries, right)) = self.leaves.get(&id) else {
                break;
            };
            for &(key, data_id) in entries {
                if let Some(&(_, data, version)) = self.data.get(&data_id) {
                    out.entry(key).or_default().push((data, version));
                }
            }
            cur = *right;
        }
        out
    }

    fn with_cache<T>(&self, f: impl FnOnce(&KeyRecords) -> T) -> T {
        let mut cache = self.cache.borrow_mut();
        if cache.is_none() {
            *cache = Some(self.collect());
        }
        f(cache.as_ref().expect("materialized above"))
    }

    /// All keys a leaf currently contributes.
    fn leaf_keys(&self, id: NodeId) -> Vec<i64> {
        self.leaves
            .get(&id)
            .map(|(entries, _)| entries.iter().map(|&(k, _)| k).collect())
            .unwrap_or_default()
    }

    fn entry_value(records: &[(i64, u64)]) -> Value {
        records
            .iter()
            .map(|&(d, v)| Value::pair(Value::from(d), Value::from(v)))
            .collect()
    }
}

impl Replayer for BLinkReplayer {
    fn apply_write(&mut self, var: &VarId, value: &Value) {
        self.cache.borrow_mut().take();
        match var.space() {
            "leaf" => {
                let id = var.index() as NodeId;
                let Some((new_entries, new_right)) = decode_leaf(value) else {
                    return; // malformed record in a corrupt log
                };
                // Keys entering/leaving this leaf are dirty. (Comparing
                // (key, data-node) pairs also catches entries re-pointed
                // at a different data node.)
                let old: BTreeSet<(i64, NodeId)> = self
                    .leaves
                    .get(&id)
                    .map(|(entries, _)| entries.iter().copied().collect())
                    .unwrap_or_default();
                let new: BTreeSet<(i64, NodeId)> = new_entries.iter().copied().collect();
                for &(key, _) in old.symmetric_difference(&new) {
                    self.dirty.insert(key);
                }
                self.leaves.insert(id, (new_entries, new_right));
                // Reachability may have changed (splits link a sibling in,
                // merges bypass one): every key of a leaf that entered or
                // left the chain is dirty.
                let reachable = self.compute_reachable();
                for &changed in self.reachable.symmetric_difference(&reachable) {
                    for key in self.leaf_keys(changed) {
                        self.dirty.insert(key);
                    }
                }
                self.reachable = reachable;
            }
            "data" => {
                if let Some((key, data, version)) = decode_data(value) {
                    let id = var.index() as NodeId;
                    if let Some(&(old_key, ..)) = self.data.get(&id) {
                        self.dirty.insert(old_key);
                    }
                    self.data.insert(id, (key, data, version));
                    self.dirty.insert(key);
                }
            }
            other => panic!("BLinkReplayer: unknown variable space {other:?}"),
        }
    }

    fn view(&self) -> View {
        self.with_cache(|cache| {
            cache
                .iter()
                .map(|(&k, records)| (Value::from(k), Self::entry_value(records)))
                .collect()
        })
    }

    fn view_of(&self, key: &Value) -> Option<Value> {
        let k = key.as_int()?;
        self.with_cache(|cache| cache.get(&k).map(|r| Self::entry_value(r)))
    }

    fn take_dirty(&mut self) -> Option<Vec<Value>> {
        Some(
            std::mem::take(&mut self.dirty)
                .into_iter()
                .map(Value::from)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeContent;

    fn write_leaf(r: &mut BLinkReplayer, id: NodeId, entries: Vec<(i64, NodeId)>, right: Option<NodeId>) {
        let content = NodeContent::Leaf {
            entries,
            high: 0, // not part of the encoding
            right,
        };
        r.apply_write(&VarId::new("leaf", id as i64), &content.encode_leaf());
    }

    fn write_data(r: &mut BLinkReplayer, id: NodeId, key: i64, data: i64, version: u64) {
        let content = NodeContent::Data { key, data, version };
        r.apply_write(&VarId::new("data", id as i64), &content.encode_data());
    }

    #[test]
    fn empty_tree_has_empty_view() {
        let r = BLinkReplayer::new();
        assert!(r.view().is_empty());
    }

    #[test]
    fn single_leaf_view() {
        let mut r = BLinkReplayer::new();
        write_data(&mut r, 10, 5, 50, 1);
        write_leaf(&mut r, 0, vec![(5, 10)], None);
        let v = r.view_of(&Value::from(5i64)).unwrap();
        assert_eq!(v.as_list().unwrap().len(), 1);
    }

    #[test]
    fn chain_traversal_spans_splits() {
        let mut r = BLinkReplayer::new();
        write_data(&mut r, 10, 5, 50, 1);
        write_data(&mut r, 11, 8, 80, 1);
        // Split: new leaf 1 holds key 8; leaf 0 links right to it.
        write_leaf(&mut r, 1, vec![(8, 11)], None);
        write_leaf(&mut r, 0, vec![(5, 10)], Some(1));
        assert_eq!(r.view().len(), 2);
        assert!(r.view_of(&Value::from(8i64)).is_some());
    }

    #[test]
    fn unreachable_leaves_are_invisible() {
        let mut r = BLinkReplayer::new();
        write_data(&mut r, 10, 5, 50, 1);
        // Leaf 3 exists but no chain reaches it.
        write_leaf(&mut r, 3, vec![(5, 10)], None);
        write_leaf(&mut r, 0, vec![], None);
        assert!(r.view().is_empty());
    }

    #[test]
    fn duplicate_keys_produce_multi_record_entries() {
        let mut r = BLinkReplayer::new();
        write_data(&mut r, 10, 5, 50, 1);
        write_data(&mut r, 11, 5, 51, 1);
        write_leaf(&mut r, 1, vec![(5, 11)], None);
        write_leaf(&mut r, 0, vec![(5, 10)], Some(1));
        let v = r.view_of(&Value::from(5i64)).unwrap();
        assert_eq!(v.as_list().unwrap().len(), 2, "duplicated data nodes visible");
    }

    #[test]
    fn dirty_protocol_reports_precise_keys() {
        let mut r = BLinkReplayer::new();
        write_data(&mut r, 10, 5, 50, 1);
        write_leaf(&mut r, 0, vec![(5, 10)], None);
        assert_eq!(r.take_dirty(), Some(vec![Value::from(5i64)]));
        // A pure data-node overwrite dirties just its key.
        write_data(&mut r, 10, 5, 55, 2);
        assert_eq!(r.take_dirty(), Some(vec![Value::from(5i64)]));
        assert_eq!(r.take_dirty(), Some(vec![]));
    }

    #[test]
    fn dirty_protocol_covers_reachability_changes() {
        let mut r = BLinkReplayer::new();
        write_data(&mut r, 10, 5, 50, 1);
        write_data(&mut r, 11, 8, 80, 1);
        write_leaf(&mut r, 0, vec![(5, 10), (8, 11)], None);
        r.take_dirty();
        // Split: leaf 1 (holding key 8) is published first — unreachable,
        // so nothing is dirty yet beyond its own diff bookkeeping...
        write_leaf(&mut r, 1, vec![(8, 11)], None);
        // ...then leaf 0 links to it: key 8 moved leaves AND leaf 1
        // entered the chain; both sides of the split are dirty.
        write_leaf(&mut r, 0, vec![(5, 10)], Some(1));
        let dirty = r.take_dirty().unwrap();
        assert!(dirty.contains(&Value::from(8i64)), "{dirty:?}");
        // A merge that bypasses leaf 1 dirties its keys as well.
        write_leaf(&mut r, 0, vec![(5, 10), (8, 11)], None);
        let dirty = r.take_dirty().unwrap();
        assert!(dirty.contains(&Value::from(8i64)), "{dirty:?}");
    }

    #[test]
    fn cyclic_chains_terminate() {
        let mut r = BLinkReplayer::new();
        write_leaf(&mut r, 1, vec![], Some(0));
        write_leaf(&mut r, 0, vec![], Some(1)); // cycle 0 -> 1 -> 0
        assert!(r.view().is_empty()); // terminates
    }
}
