//! # vyrd-blinktree — the Boxwood B-link tree (§7.2.3–§7.2.5, Fig. 9)
//!
//! A concurrent B-link tree in the style of Sagiv [12]: right-linked
//! nodes with high keys, lock-free-of-coupling descents that repair stale
//! routing by moving right, split-then-ascend inserts with the Fig. 9
//! conditional commit points, an internal compression task, and the
//! Table 1 "allowing duplicated data nodes" bug
//! ([`BLinkVariant::DuplicateDataNodes`]).
//!
//! ```
//! use vyrd_core::checker::Checker;
//! use vyrd_core::log::{EventLog, LogMode};
//! use vyrd_blinktree::{BLinkReplayer, BLinkSpec, BLinkTree, BLinkVariant};
//!
//! let log = EventLog::in_memory(LogMode::View);
//! let tree = BLinkTree::new(BLinkVariant::Correct, log.clone());
//! let h = tree.handle();
//! for k in 0..32 {
//!     h.insert(k, k);
//! }
//! let report = Checker::view(BLinkSpec::new(), BLinkReplayer::new())
//!     .check_events(log.snapshot());
//! assert!(report.passed());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod node;
mod replay;
mod spec;
mod tree;

pub use replay::BLinkReplayer;
pub use spec::BLinkSpec;
pub use tree::{BLinkTree, BLinkTreeHandle, BLinkVariant};

#[cfg(test)]
mod tests {
    use super::*;
    use vyrd_core::checker::Checker;
    use vyrd_core::log::{EventLog, LogMode};
    use vyrd_core::violation::Report;

    fn view_log() -> EventLog {
        EventLog::in_memory(LogMode::View)
    }

    fn check_io(log: &EventLog) -> Report {
        Checker::io(BLinkSpec::new()).check_events(log.snapshot())
    }

    fn check_view(log: &EventLog) -> Report {
        Checker::view(BLinkSpec::new(), BLinkReplayer::new()).check_events(log.snapshot())
    }

    #[test]
    fn sequential_inserts_lookups_deletes() {
        let log = view_log();
        let tree = BLinkTree::new(BLinkVariant::Correct, log.clone());
        let h = tree.handle();
        // Enough keys to force several levels of splits (MAX_KEYS = 4).
        for k in 0..64 {
            h.insert(k * 3 % 64, k);
        }
        // 3 is invertible mod 64, so {k*3 mod 64} covers every key 0..64.
        for k in 0..64i64 {
            assert!(h.lookup(k).is_some(), "key {k}");
        }
        assert!(h.delete(0));
        assert_eq!(h.lookup(0), None);
        assert!(!h.delete(0));
        assert!(check_io(&log).passed());
        let view = check_view(&log);
        assert!(view.passed(), "view: {view}");
    }

    #[test]
    fn overwrites_bump_versions() {
        let log = view_log();
        let tree = BLinkTree::new(BLinkVariant::Correct, log.clone());
        let h = tree.handle();
        h.insert(5, 50);
        h.insert(5, 55);
        h.insert(5, 56);
        assert_eq!(h.lookup(5), Some(56));
        let view = check_view(&log);
        assert!(view.passed(), "view: {view}");
    }

    #[test]
    fn descending_and_random_orders_build_valid_trees() {
        for seed in [1u64, 7, 23] {
            let log = view_log();
            let tree = BLinkTree::new(BLinkVariant::Correct, log.clone());
            let h = tree.handle();
            let mut x = seed;
            for i in (0..48).rev() {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let k = ((x >> 33) % 97) as i64;
                h.insert(k, i);
            }
            for i in 0..48 {
                h.insert(i, i);
                assert_eq!(h.lookup(i), Some(i), "seed {seed}");
            }
            let view = check_view(&log);
            assert!(view.passed(), "seed {seed}: {view}");
        }
    }

    #[test]
    fn compression_merges_and_preserves_contents() {
        let log = view_log();
        let tree = BLinkTree::new(BLinkVariant::Correct, log.clone());
        let h = tree.handle();
        for k in 0..40 {
            h.insert(k, k * 2);
        }
        for k in 0..40 {
            if k % 2 == 0 {
                assert!(h.delete(k));
            }
        }
        h.compress();
        for k in 0..40 {
            let expected = if k % 2 == 0 { None } else { Some(k * 2) };
            assert_eq!(h.lookup(k), expected, "key {k} after compression");
        }
        // More inserts after compression still work (rebuilt index).
        for k in 100..120 {
            h.insert(k, k);
            assert_eq!(h.lookup(k), Some(k));
        }
        let view = check_view(&log);
        assert!(view.passed(), "view: {view}");
        assert!(check_io(&log).passed());
    }

    #[test]
    fn concurrent_correct_run_passes() {
        let log = view_log();
        let tree = BLinkTree::new(BLinkVariant::Correct, log.clone());
        let mut workers = Vec::new();
        for t in 0..4i64 {
            let h = tree.handle();
            workers.push(std::thread::spawn(move || {
                for i in 0..60 {
                    let k = (t * 13 + i * 7) % 41;
                    match i % 4 {
                        0 | 1 => h.insert(k, t * 1000 + i),
                        2 => {
                            h.delete(k);
                        }
                        _ => {
                            h.lookup(k);
                        }
                    }
                }
            }));
        }
        for w in workers {
            w.join().unwrap();
        }
        let io = check_io(&log);
        assert!(io.passed(), "io: {io}");
        let view = check_view(&log);
        assert!(view.passed(), "view: {view}");
    }

    #[test]
    fn concurrent_run_with_compression_passes() {
        let log = view_log();
        let tree = BLinkTree::new(BLinkVariant::Correct, log.clone());
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let compressor = {
            let tree = tree.clone();
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                let h = tree.handle();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    h.compress();
                    std::thread::yield_now();
                }
            })
        };
        let mut workers = Vec::new();
        for t in 0..3i64 {
            let h = tree.handle();
            workers.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let k = (t * 17 + i * 5) % 29;
                    match i % 3 {
                        0 => h.insert(k, i),
                        1 => {
                            h.delete(k);
                        }
                        _ => {
                            h.lookup(k);
                        }
                    }
                }
            }));
        }
        for w in workers {
            w.join().unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        compressor.join().unwrap();
        let view = check_view(&log);
        assert!(view.passed(), "view: {view}");
    }

    #[test]
    fn duplicate_data_nodes_bug_is_caught() {
        // Fill one leaf to the brink, then race two inserts of the same
        // key: in the buggy variant one inserter may use a stale leaf
        // after the other's split moved the key right — duplicating it.
        for _ in 0..600 {
            let log = view_log();
            let tree = BLinkTree::new(BLinkVariant::DuplicateDataNodes, log.clone());
            let seed = tree.handle();
            for k in [10, 20, 30, 40] {
                seed.insert(k, k);
            }
            let h1 = tree.handle();
            let h2 = tree.handle();
            let a = std::thread::spawn(move || {
                h1.insert(25, 1111);
            });
            let b = std::thread::spawn(move || {
                h2.insert(35, 2222);
                h2.insert(25, 3333);
            });
            a.join().unwrap();
            b.join().unwrap();
            let view = check_view(&log);
            if !view.passed() {
                let v = view.violation.unwrap();
                assert!(
                    matches!(v.category(), "view-mismatch" | "observer-unjustified"),
                    "unexpected violation {v}"
                );
                return;
            }
        }
        panic!("the duplicate-data-node race never manifested in 600 attempts");
    }
}
