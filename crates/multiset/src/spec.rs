//! The executable multiset specification (Fig. 1 of the paper).
//!
//! The abstract state is the multiset contents `M`. Following the paper:
//!
//! * `Insert(x)` and `InsertPair(x, y)` "are allowed to terminate
//!   successfully or exceptionally, but exceptionally-terminating
//!   [operations] are required to leave the multiset state unchanged" —
//!   i.e. the return value is nondeterministic but determines the
//!   successor state, as the §3.2 determinism definition requires.
//! * `InsertPair` must insert *both* or *neither* of its arguments: "it
//!   will be considered a refinement violation if only one of x or y is
//!   inserted into the multiset."
//! * `LookUp(x)` is an observer returning whether `x ∈ M`.
//! * `Delete(x)` removes one occurrence and returns `true`; a `false`
//!   return is treated like an exceptional termination and is always
//!   allowed (leaving the state unchanged) — the permissiveness that
//!   separates refinement from atomicity (§1).
//! * `Compress` models the internal compression task: a mutator whose
//!   specification transition leaves `M` unchanged, so view refinement
//!   verifies that compression does not disturb the abstract contents
//!   (§7.2.3 applies the same check to the B-link tree's compression
//!   thread).

use std::collections::BTreeMap;

use vyrd_core::spec::{MethodKind, Spec, SpecEffect, SpecError};
use vyrd_core::view::View;
use vyrd_core::{MethodId, Value};

/// Method name constants shared by the specification and the instrumented
/// implementations.
pub mod methods {
    /// `Insert(x)` — add one occurrence of `x` (may fail).
    pub const INSERT: &str = "Insert";
    /// `InsertPair(x, y)` — add `x` and `y` atomically (may fail).
    pub const INSERT_PAIR: &str = "InsertPair";
    /// `Delete(x)` — remove one occurrence of `x`.
    pub const DELETE: &str = "Delete";
    /// `LookUp(x)` — is `x` present?
    pub const LOOKUP: &str = "LookUp";
    /// Internal compression task (must not change the contents).
    pub const COMPRESS: &str = "Compress";
}

/// Atomic multiset of integers: the specification `M` of Fig. 1.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MultisetSpec {
    counts: BTreeMap<i64, u64>,
}

impl MultisetSpec {
    /// Creates an empty multiset specification.
    pub fn new() -> MultisetSpec {
        MultisetSpec::default()
    }

    /// Multiplicity of `x` in `M`.
    pub fn count(&self, x: i64) -> u64 {
        self.counts.get(&x).copied().unwrap_or(0)
    }

    /// `x ∈ M`?
    pub fn contains(&self, x: i64) -> bool {
        self.count(x) > 0
    }

    /// Total number of elements (with multiplicity).
    pub fn len(&self) -> u64 {
        self.counts.values().sum()
    }

    /// `true` if `M` is empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    fn add(&mut self, x: i64) {
        *self.counts.entry(x).or_insert(0) += 1;
    }

    fn remove(&mut self, x: i64) -> bool {
        match self.counts.get_mut(&x) {
            Some(n) if *n > 1 => {
                *n -= 1;
                true
            }
            Some(_) => {
                self.counts.remove(&x);
                true
            }
            None => false,
        }
    }

    fn int_arg(args: &[Value], i: usize) -> Result<i64, SpecError> {
        args.get(i)
            .and_then(Value::as_int)
            .ok_or_else(|| SpecError::new(format!("argument {i} is not an integer")))
    }
}

impl Spec for MultisetSpec {
    fn kind(&self, method: &MethodId) -> MethodKind {
        if method.name() == methods::LOOKUP {
            MethodKind::Observer
        } else {
            MethodKind::Mutator
        }
    }

    fn apply(
        &mut self,
        method: &MethodId,
        args: &[Value],
        ret: &Value,
    ) -> Result<SpecEffect, SpecError> {
        match method.name() {
            methods::INSERT => {
                let x = Self::int_arg(args, 0)?;
                if ret.is_success() {
                    self.add(x);
                    Ok(SpecEffect::touching([x]))
                } else if ret.is_failure() {
                    Ok(SpecEffect::unchanged())
                } else {
                    Err(SpecError::new(format!(
                        "Insert may return success or failure, not {ret}"
                    )))
                }
            }
            methods::INSERT_PAIR => {
                let x = Self::int_arg(args, 0)?;
                let y = Self::int_arg(args, 1)?;
                if ret.is_success() {
                    self.add(x);
                    self.add(y);
                    Ok(SpecEffect::touching([x, y]))
                } else if ret.is_failure() {
                    Ok(SpecEffect::unchanged())
                } else {
                    Err(SpecError::new(format!(
                        "InsertPair may return success or failure, not {ret}"
                    )))
                }
            }
            methods::DELETE => {
                let x = Self::int_arg(args, 0)?;
                match ret.as_bool() {
                    Some(true) => {
                        if self.remove(x) {
                            Ok(SpecEffect::touching([x]))
                        } else {
                            Err(SpecError::new(format!(
                                "Delete({x}) returned true but {x} is not in the multiset"
                            )))
                        }
                    }
                    // A false return is an allowed unproductive termination
                    // and leaves M unchanged.
                    Some(false) => Ok(SpecEffect::unchanged()),
                    None => Err(SpecError::new(format!(
                        "Delete returns a boolean, not {ret}"
                    ))),
                }
            }
            methods::COMPRESS => {
                if ret.is_unit() {
                    Ok(SpecEffect::unchanged())
                } else {
                    Err(SpecError::new(format!(
                        "Compress returns unit, not {ret}"
                    )))
                }
            }
            other => Err(SpecError::new(format!("unknown mutator {other}"))),
        }
    }

    fn accepts_observation(&self, method: &MethodId, args: &[Value], ret: &Value) -> bool {
        if method.name() != methods::LOOKUP {
            return false;
        }
        let Some(x) = args.first().and_then(Value::as_int) else {
            return false;
        };
        ret.as_bool() == Some(self.contains(x))
    }

    fn view(&self) -> View {
        self.counts
            .iter()
            .map(|(&x, &n)| (Value::from(x), Value::from(n)))
            .collect()
    }

    fn view_of(&self, key: &Value) -> Option<Value> {
        let x = key.as_int()?;
        self.counts.get(&x).map(|&n| Value::from(n))
    }

    fn save_state(&self) -> Option<Value> {
        Some(Value::List(
            self.counts
                .iter()
                .map(|(&x, &n)| Value::pair(Value::from(x), Value::from(n)))
                .collect(),
        ))
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), SpecError> {
        let entries = state
            .as_list()
            .ok_or_else(|| SpecError::new("multiset state must be a list"))?;
        let mut counts = BTreeMap::new();
        for entry in entries {
            let (x, n) = entry
                .as_pair()
                .and_then(|(x, n)| Some((x.as_int()?, u64::try_from(n.as_int()?).ok()?)))
                .ok_or_else(|| SpecError::new("multiset entry must be an (int, count) pair"))?;
            counts.insert(x, n);
        }
        self.counts = counts;
        Ok(())
    }

    /// Replaying a multiset commit signature is one `BTreeMap` entry
    /// update — cheaper than materializing snapshot clones, whose
    /// count the adaptive policy only ratchets down as windows deepen.
    /// Pin the stride wide from the first commit: retain the (dense,
    /// O(1)-to-record) signatures and replay on demand instead of
    /// paying the adaptive policy's dense early-window cloning.
    fn snapshot_stride(&self) -> Option<u64> {
        Some(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(name: &str) -> MethodId {
        MethodId::from(name)
    }

    fn ints(xs: &[i64]) -> Vec<Value> {
        xs.iter().map(|&x| Value::from(x)).collect()
    }

    #[test]
    fn insert_success_adds_failure_does_not() {
        let mut s = MultisetSpec::new();
        s.apply(&m("Insert"), &ints(&[5]), &Value::success()).unwrap();
        assert!(s.contains(5));
        s.apply(&m("Insert"), &ints(&[6]), &Value::failure()).unwrap();
        assert!(!s.contains(6));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn insert_rejects_other_returns() {
        let mut s = MultisetSpec::new();
        assert!(s
            .apply(&m("Insert"), &ints(&[5]), &Value::from(true))
            .is_err());
    }

    #[test]
    fn insert_pair_is_all_or_nothing() {
        let mut s = MultisetSpec::new();
        s.apply(&m("InsertPair"), &ints(&[5, 6]), &Value::success())
            .unwrap();
        assert!(s.contains(5) && s.contains(6));
        s.apply(&m("InsertPair"), &ints(&[7, 8]), &Value::failure())
            .unwrap();
        assert!(!s.contains(7) && !s.contains(8));
    }

    #[test]
    fn insert_pair_tracks_multiplicity_of_equal_args() {
        let mut s = MultisetSpec::new();
        s.apply(&m("InsertPair"), &ints(&[4, 4]), &Value::success())
            .unwrap();
        assert_eq!(s.count(4), 2);
    }

    #[test]
    fn delete_true_requires_presence() {
        let mut s = MultisetSpec::new();
        let err = s
            .apply(&m("Delete"), &ints(&[9]), &Value::from(true))
            .unwrap_err();
        assert!(err.message().contains("not in the multiset"));
        s.apply(&m("Insert"), &ints(&[9]), &Value::success()).unwrap();
        s.apply(&m("Delete"), &ints(&[9]), &Value::from(true))
            .unwrap();
        assert!(!s.contains(9));
    }

    #[test]
    fn delete_false_is_always_allowed() {
        let mut s = MultisetSpec::new();
        s.apply(&m("Insert"), &ints(&[9]), &Value::success()).unwrap();
        let before = s.clone();
        s.apply(&m("Delete"), &ints(&[9]), &Value::from(false))
            .unwrap();
        assert_eq!(s, before);
    }

    #[test]
    fn delete_decrements_multiplicity() {
        let mut s = MultisetSpec::new();
        s.apply(&m("Insert"), &ints(&[2]), &Value::success()).unwrap();
        s.apply(&m("Insert"), &ints(&[2]), &Value::success()).unwrap();
        s.apply(&m("Delete"), &ints(&[2]), &Value::from(true))
            .unwrap();
        assert_eq!(s.count(2), 1);
        assert!(s.contains(2));
    }

    #[test]
    fn lookup_observation_matches_membership() {
        let mut s = MultisetSpec::new();
        s.apply(&m("Insert"), &ints(&[3]), &Value::success()).unwrap();
        assert!(s.accepts_observation(&m("LookUp"), &ints(&[3]), &Value::from(true)));
        assert!(!s.accepts_observation(&m("LookUp"), &ints(&[3]), &Value::from(false)));
        assert!(s.accepts_observation(&m("LookUp"), &ints(&[4]), &Value::from(false)));
        // Non-boolean returns are never accepted.
        assert!(!s.accepts_observation(&m("LookUp"), &ints(&[3]), &Value::from(1i64)));
    }

    #[test]
    fn compress_must_not_change_state() {
        let mut s = MultisetSpec::new();
        s.apply(&m("Insert"), &ints(&[3]), &Value::success()).unwrap();
        let before = s.view();
        let effect = s.apply(&m("Compress"), &[], &Value::Unit).unwrap();
        assert!(effect.dirty_keys.is_empty());
        assert_eq!(s.view(), before);
        assert!(s.apply(&m("Compress"), &[], &Value::from(1i64)).is_err());
    }

    #[test]
    fn kinds_are_correct() {
        let s = MultisetSpec::new();
        assert_eq!(s.kind(&m("LookUp")), MethodKind::Observer);
        assert_eq!(s.kind(&m("Insert")), MethodKind::Mutator);
        assert_eq!(s.kind(&m("Compress")), MethodKind::Mutator);
    }

    #[test]
    fn view_reports_multiplicities() {
        let mut s = MultisetSpec::new();
        s.apply(&m("Insert"), &ints(&[3]), &Value::success()).unwrap();
        s.apply(&m("Insert"), &ints(&[3]), &Value::success()).unwrap();
        let v = s.view();
        assert_eq!(v.get(&Value::from(3i64)), Some(&Value::from(2u64)));
        assert_eq!(s.view_of(&Value::from(3i64)), Some(Value::from(2u64)));
        assert_eq!(s.view_of(&Value::from(4i64)), None);
    }

    #[test]
    fn unknown_methods_are_rejected() {
        let mut s = MultisetSpec::new();
        assert!(s.apply(&m("Shrink"), &[], &Value::Unit).is_err());
        assert!(!s.accepts_observation(&m("Size"), &[], &Value::from(0i64)));
    }
}
