//! # vyrd-multiset — the paper's running example (§2, §7.4.2)
//!
//! Three instrumented concurrent multiset implementations, their executable
//! specification, and the replayers that reconstruct `view_I` from logged
//! writes:
//!
//! * [`ArrayMultiset`] — the fixed-capacity array multiset of Figs. 2/4,
//!   including `InsertPair` with its commit block and the Fig. 5 buggy
//!   `FindSlot` ([`FindSlotVariant::Buggy`]).
//! * [`VectorMultiset`] — the growable "Multiset-Vector" of §7.4.2 with an
//!   internal compression task.
//! * [`BstMultiset`] — the binary-search-tree multiset with tombstoning
//!   deletes, compression, and the "unlocking parent before insertion"
//!   bug ([`BstVariant::UnlockParentEarly`]).
//! * [`MultisetSpec`] — the atomic specification of Fig. 1.
//! * [`AtomizedArrayMultiset`] — the atomized implementation used *as* the
//!   specification (§4.4).
//! * [`SlotReplayer`] / [`BstReplayer`] — shadow states for view
//!   refinement.
//!
//! ```
//! use vyrd_core::checker::Checker;
//! use vyrd_core::log::{EventLog, LogMode};
//! use vyrd_multiset::{ArrayMultiset, FindSlotVariant, MultisetSpec, SlotReplayer};
//!
//! let log = EventLog::in_memory(LogMode::View);
//! let ms = ArrayMultiset::new(8, FindSlotVariant::Correct, log.clone());
//! let h = ms.handle();
//! h.insert_pair(5, 6);
//! assert!(h.lookup(5));
//!
//! let report = Checker::view(MultisetSpec::new(), SlotReplayer::new())
//!     .check_events(log.snapshot());
//! assert!(report.passed());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod array;
mod atomized;
mod bst;
mod replay;
mod spec;
mod vector;

pub use array::{ArrayMultiset, ArrayMultisetHandle, FindSlotVariant};
pub use atomized::AtomizedArrayMultiset;
pub use bst::{BstMultiset, BstMultisetHandle, BstVariant};
pub use replay::{BstReplayer, SlotReplayer};
pub use spec::{methods, MultisetSpec};
pub use vector::{VectorMultiset, VectorMultisetHandle};

#[cfg(test)]
mod tests {
    use super::*;
    use vyrd_core::checker::Checker;
    use vyrd_core::log::{EventLog, LogMode};
    use vyrd_core::violation::Report;

    fn view_log() -> EventLog {
        EventLog::in_memory(LogMode::View)
    }

    fn check_io(log: &EventLog) -> Report {
        Checker::io(MultisetSpec::new()).check_events(log.snapshot())
    }

    fn check_view(log: &EventLog) -> Report {
        Checker::view(MultisetSpec::new(), SlotReplayer::new()).check_events(log.snapshot())
    }

    fn check_view_bst(log: &EventLog) -> Report {
        Checker::view(MultisetSpec::new(), BstReplayer::new()).check_events(log.snapshot())
    }

    // ---------------- array multiset ----------------

    #[test]
    fn array_sequential_semantics() {
        let log = view_log();
        let ms = ArrayMultiset::new(4, FindSlotVariant::Correct, log.clone());
        let h = ms.handle();
        assert!(h.insert(1).is_success());
        assert!(h.insert(1).is_success());
        assert!(h.lookup(1));
        assert!(!h.lookup(2));
        assert!(h.delete(1));
        assert!(h.lookup(1));
        assert!(h.delete(1));
        assert!(!h.lookup(1));
        assert!(!h.delete(1));
        assert!(check_io(&log).passed());
        assert!(check_view(&log).passed());
    }

    #[test]
    fn array_fills_up_and_fails() {
        let log = view_log();
        let ms = ArrayMultiset::new(2, FindSlotVariant::Correct, log.clone());
        let h = ms.handle();
        assert!(h.insert(1).is_success());
        assert!(h.insert(2).is_success());
        assert!(h.insert(3).is_failure());
        // InsertPair with one slot free must fail and release its
        // reservation.
        assert!(h.delete(1));
        assert!(h.insert_pair(8, 9).is_failure());
        assert!(h.insert(4).is_success());
        assert!(check_view(&log).passed());
    }

    #[test]
    fn array_insert_pair_is_atomic() {
        let log = view_log();
        let ms = ArrayMultiset::new(8, FindSlotVariant::Correct, log.clone());
        let h = ms.handle();
        assert!(h.insert_pair(5, 6).is_success());
        assert!(h.lookup(5) && h.lookup(6));
        assert!(h.insert_pair(7, 7).is_success());
        assert!(h.delete(7) && h.delete(7) && !h.delete(7));
        assert!(check_view(&log).passed());
    }

    #[test]
    fn array_concurrent_correct_run_passes_both_checkers() {
        let log = view_log();
        let ms = ArrayMultiset::new(64, FindSlotVariant::Correct, log.clone());
        let mut handles = Vec::new();
        for t in 0..4i64 {
            let h = ms.handle();
            handles.push(std::thread::spawn(move || {
                for i in 0..40 {
                    let x = (t * 40 + i) % 23;
                    match i % 4 {
                        0 => {
                            h.insert(x);
                        }
                        1 => {
                            h.insert_pair(x, x + 1);
                        }
                        2 => {
                            h.delete(x);
                        }
                        _ => {
                            h.lookup(x);
                        }
                    }
                }
            }));
        }
        for th in handles {
            th.join().unwrap();
        }
        let io = check_io(&log);
        assert!(io.passed(), "io: {io}");
        let view = check_view(&log);
        assert!(view.passed(), "view: {view}");
    }

    #[test]
    fn fig6_buggy_findslot_is_caught_by_view_refinement() {
        // Re-run until the race actually fires (it usually does within a
        // few attempts thanks to the yield in the buggy FindSlot).
        for _ in 0..200 {
            let log = view_log();
            let ms = ArrayMultiset::new(4, FindSlotVariant::Buggy, log.clone());
            let h1 = ms.handle();
            let h2 = ms.handle();
            let t1 = std::thread::spawn(move || h1.insert_pair(5, 6));
            let t2 = std::thread::spawn(move || h2.insert_pair(7, 8));
            t1.join().unwrap();
            t2.join().unwrap();
            let report = check_view(&log);
            if !report.passed() {
                let v = report.violation.unwrap();
                assert_eq!(v.category(), "view-mismatch");
                return;
            }
        }
        panic!("the FindSlot race never manifested in 200 attempts");
    }

    #[test]
    fn fig6_buggy_findslot_needs_a_lookup_for_io_refinement() {
        // I/O refinement detects the same bug only once an observer
        // surfaces the lost element (§5's motivation for views).
        for _ in 0..200 {
            let log = view_log();
            let ms = ArrayMultiset::new(4, FindSlotVariant::Buggy, log.clone());
            let h1 = ms.handle();
            let h2 = ms.handle();
            let a = std::thread::spawn(move || h1.insert_pair(5, 6));
            let b = std::thread::spawn(move || h2.insert_pair(7, 8));
            a.join().unwrap();
            b.join().unwrap();
            let h = ms.handle();
            let all_present =
                h.lookup(5) && h.lookup(6) && h.lookup(7) && h.lookup(8);
            let io = check_io(&log);
            if !all_present {
                assert!(
                    !io.passed(),
                    "an element was lost but I/O refinement passed"
                );
                return;
            }
            assert!(io.passed(), "no element lost yet I/O refinement failed: {io}");
        }
        panic!("the FindSlot race never manifested in 200 attempts");
    }

    // ---------------- vector multiset ----------------

    #[test]
    fn vector_grows_and_compacts() {
        let log = view_log();
        let ms = VectorMultiset::new(FindSlotVariant::Correct, log.clone());
        let h = ms.handle();
        for x in 0..10 {
            h.insert(x);
        }
        assert_eq!(ms.slot_count(), 10);
        for x in 0..5 {
            assert!(h.delete(x * 2));
        }
        h.compress();
        assert!(ms.slot_count() <= 5, "compaction shrank to {}", ms.slot_count());
        for x in [1, 3, 5, 7, 9] {
            assert!(h.lookup(x), "{x} survived compaction");
        }
        for x in [0, 2, 4, 6, 8] {
            assert!(!h.lookup(x));
        }
        assert!(check_view(&log).passed());
        assert!(check_io(&log).passed());
    }

    #[test]
    fn vector_concurrent_with_compression_passes() {
        let log = view_log();
        let ms = VectorMultiset::new(FindSlotVariant::Correct, log.clone());
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let compressor = {
            let ms = ms.clone();
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                let h = ms.handle();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    h.compress();
                    std::thread::yield_now();
                }
            })
        };
        let mut workers = Vec::new();
        for t in 0..4i64 {
            let h = ms.handle();
            workers.push(std::thread::spawn(move || {
                for i in 0..60 {
                    let x = (t * 7 + i) % 11;
                    match i % 3 {
                        0 => {
                            h.insert(x);
                        }
                        1 => {
                            h.delete(x);
                        }
                        _ => {
                            h.lookup(x);
                        }
                    }
                }
            }));
        }
        for w in workers {
            w.join().unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        compressor.join().unwrap();
        let view = check_view(&log);
        assert!(view.passed(), "view: {view}");
    }

    #[test]
    fn vector_buggy_findslot_detected_under_contention() {
        for _ in 0..200 {
            let log = view_log();
            let ms = VectorMultiset::new(FindSlotVariant::Buggy, log.clone());
            // Pre-populate one free slot so both inserters race for it.
            let h0 = ms.handle();
            h0.insert(100);
            h0.delete(100);
            let h1 = ms.handle();
            let h2 = ms.handle();
            let a = std::thread::spawn(move || h1.insert(5));
            let b = std::thread::spawn(move || h2.insert(7));
            a.join().unwrap();
            b.join().unwrap();
            let report = check_view(&log);
            if !report.passed() {
                assert!(report.violation.unwrap().is_view_only());
                return;
            }
        }
        panic!("the FindSlot race never manifested in 200 attempts");
    }

    // ---------------- BST multiset ----------------

    #[test]
    fn bst_sequential_semantics() {
        let log = view_log();
        let ms = BstMultiset::new(BstVariant::Correct, log.clone());
        let h = ms.handle();
        for x in [50, 30, 70, 30, 20, 80] {
            h.insert(x);
        }
        assert!(h.lookup(30));
        assert!(h.delete(30));
        assert!(h.lookup(30), "multiplicity 2");
        assert!(h.delete(30));
        assert!(!h.lookup(30));
        assert!(!h.delete(30));
        assert!(h.lookup(80));
        assert!(check_io(&log).passed());
        assert!(check_view_bst(&log).passed());
    }

    #[test]
    fn bst_compression_preserves_the_view() {
        let log = view_log();
        let ms = BstMultiset::new(BstVariant::Correct, log.clone());
        let h = ms.handle();
        for x in [50, 30, 70, 20, 40, 60, 80] {
            h.insert(x);
        }
        for x in [30, 70, 50] {
            h.delete(x);
        }
        h.compress();
        for x in [20, 40, 60, 80] {
            assert!(h.lookup(x), "{x} survived compression");
        }
        for x in [30, 50, 70] {
            assert!(!h.lookup(x));
        }
        let report = check_view_bst(&log);
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn bst_concurrent_correct_run_passes() {
        let log = view_log();
        let ms = BstMultiset::new(BstVariant::Correct, log.clone());
        let mut workers = Vec::new();
        for t in 0..4i64 {
            let h = ms.handle();
            workers.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let x = (t * 31 + i * 7) % 17;
                    match i % 3 {
                        0 => {
                            h.insert(x);
                        }
                        1 => {
                            h.delete(x);
                        }
                        _ => {
                            h.lookup(x);
                        }
                    }
                }
            }));
        }
        for w in workers {
            w.join().unwrap();
        }
        let h = ms.handle();
        h.compress();
        let view = check_view_bst(&log);
        assert!(view.passed(), "view: {view}");
        assert!(check_io(&log).passed());
    }

    #[test]
    fn bst_unlock_parent_bug_is_caught() {
        for _ in 0..400 {
            let log = view_log();
            let ms = BstMultiset::new(BstVariant::UnlockParentEarly, log.clone());
            let h0 = ms.handle();
            h0.insert(50); // shared parent
            let h1 = ms.handle();
            let h2 = ms.handle();
            // Both go left under 50 and race on the same link.
            let a = std::thread::spawn(move || h1.insert(20));
            let b = std::thread::spawn(move || h2.insert(30));
            a.join().unwrap();
            b.join().unwrap();
            let report = check_view_bst(&log);
            if !report.passed() {
                assert_eq!(report.violation.unwrap().category(), "view-mismatch");
                return;
            }
        }
        panic!("the unlock-parent race never manifested in 400 attempts");
    }
}
