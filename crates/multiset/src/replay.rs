//! Replayers: reconstruct multiset shadow state from logged writes and
//! extract `view_I` (§5.1).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use vyrd_core::replay::Replayer;
use vyrd_core::spec::SpecError;
use vyrd_core::view::View;
use vyrd_core::{Value, VarId};

/// Shadow state for the slot-based multisets ([`ArrayMultiset`] and
/// [`VectorMultiset`]).
///
/// Variables:
///
/// * `elt[i]` — the element reserved in slot `i` (`Unit` = empty);
/// * `valid[i]` — slot `i`'s membership bit.
///
/// `view_I` is the multiset `{ elt[i] : valid[i] }` computed exactly as in
/// §5.1, but maintained *incrementally*: each write adjusts a multiplicity
/// map and marks the affected element values dirty (§6.4).
///
/// [`ArrayMultiset`]: crate::ArrayMultiset
/// [`VectorMultiset`]: crate::VectorMultiset
#[derive(Debug, Default)]
pub struct SlotReplayer {
    slots: HashMap<i64, (Option<i64>, bool)>,
    counts: BTreeMap<i64, u64>,
    dirty: BTreeSet<i64>,
}

impl SlotReplayer {
    /// Creates an empty shadow state.
    pub fn new() -> SlotReplayer {
        SlotReplayer::default()
    }

    /// Multiplicity of `x` in the replayed multiset.
    pub fn count(&self, x: i64) -> u64 {
        self.counts.get(&x).copied().unwrap_or(0)
    }

    fn contribution(state: &(Option<i64>, bool)) -> Option<i64> {
        match state {
            (Some(x), true) => Some(*x),
            _ => None,
        }
    }

    fn update(&mut self, index: i64, f: impl FnOnce(&mut (Option<i64>, bool))) {
        let state = self.slots.entry(index).or_insert((None, false));
        let before = Self::contribution(state);
        f(state);
        let after = Self::contribution(state);
        if before == after {
            return;
        }
        if let Some(x) = before {
            let n = self.counts.entry(x).or_insert(0);
            *n = n.saturating_sub(1);
            if *n == 0 {
                self.counts.remove(&x);
            }
            self.dirty.insert(x);
        }
        if let Some(x) = after {
            *self.counts.entry(x).or_insert(0) += 1;
            self.dirty.insert(x);
        }
    }
}

impl Replayer for SlotReplayer {
    fn apply_write(&mut self, var: &VarId, value: &Value) {
        match var.space() {
            "elt" => self.update(var.index(), |s| s.0 = value.as_int()),
            "valid" => self.update(var.index(), |s| s.1 = value.as_bool().unwrap_or(false)),
            other => panic!("SlotReplayer: unknown variable space {other:?}"),
        }
    }

    fn view(&self) -> View {
        self.counts
            .iter()
            .map(|(&x, &n)| (Value::from(x), Value::from(n)))
            .collect()
    }

    fn view_of(&self, key: &Value) -> Option<Value> {
        let x = key.as_int()?;
        self.counts.get(&x).map(|&n| Value::from(n))
    }

    fn take_dirty(&mut self) -> Option<Vec<Value>> {
        Some(
            std::mem::take(&mut self.dirty)
                .into_iter()
                .map(Value::from)
                .collect(),
        )
    }

    fn save_state(&self) -> Option<Value> {
        // The multiplicity map is derived from the slots; persisting the
        // slots and the dirty set is the complete state.
        let mut slots: Vec<_> = self.slots.iter().collect();
        slots.sort_by_key(|(&i, _)| i);
        Some(Value::List(vec![
            Value::List(
                slots
                    .into_iter()
                    .map(|(&i, &(elt, valid))| {
                        Value::List(vec![
                            Value::from(i),
                            elt.map(Value::from).unwrap_or(Value::Unit),
                            Value::from(valid),
                        ])
                    })
                    .collect(),
            ),
            Value::List(self.dirty.iter().map(|&x| Value::from(x)).collect()),
        ]))
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), SpecError> {
        let malformed = || SpecError::new("malformed slot-replayer state");
        let parts = state.as_list().ok_or_else(malformed)?;
        let [slots_v, dirty_v] = parts else {
            return Err(malformed());
        };
        let mut slots = HashMap::new();
        let mut counts = BTreeMap::new();
        for entry in slots_v.as_list().ok_or_else(malformed)? {
            let [i, elt, valid] = entry.as_list().ok_or_else(malformed)? else {
                return Err(malformed());
            };
            let i = i.as_int().ok_or_else(malformed)?;
            let state = (elt.as_int(), valid.as_bool().ok_or_else(malformed)?);
            if let Some(x) = Self::contribution(&state) {
                *counts.entry(x).or_insert(0u64) += 1;
            }
            slots.insert(i, state);
        }
        let mut dirty = BTreeSet::new();
        for x in dirty_v.as_list().ok_or_else(malformed)? {
            dirty.insert(x.as_int().ok_or_else(malformed)?);
        }
        self.slots = slots;
        self.counts = counts;
        self.dirty = dirty;
        Ok(())
    }
}

/// Shadow state for the binary-search-tree multiset.
///
/// Variables (all indexed by node id):
///
/// * `bst.key[id]`, `bst.count[id]` — the node's key and multiplicity;
/// * `bst.left[id]`, `bst.right[id]` — child links (`Unit` = none);
/// * `bst.root[0]` — the root node id.
///
/// Unlike [`SlotReplayer`], membership depends on *reachability*: a node
/// that exists but is not linked from the root does not contribute (this
/// is what catches the "unlocking parent before insertion" lost-insert
/// bug — the lost node is unreachable, so `view_I` is missing an element
/// the specification has). `view_I` is computed by an in-order traversal,
/// mirroring the paper's leaf traversal for the B-link tree (§7.2.4).
///
/// Incrementality: while the tree *structure* is unchanged, count updates
/// are tracked per key; any structural write falls back to a full
/// comparison (`take_dirty` → `None`).
#[derive(Debug, Default)]
pub struct BstReplayer {
    keys: HashMap<i64, i64>,
    counts: HashMap<i64, u64>,
    left: HashMap<i64, Option<i64>>,
    right: HashMap<i64, Option<i64>>,
    root: Option<i64>,
    dirty: BTreeSet<i64>,
    structure_changed: bool,
}

impl BstReplayer {
    /// Creates an empty shadow tree.
    pub fn new() -> BstReplayer {
        BstReplayer::default()
    }

    fn reachable_counts(&self) -> BTreeMap<i64, u64> {
        let mut out = BTreeMap::new();
        let mut stack = Vec::new();
        if let Some(root) = self.root {
            stack.push(root);
        }
        let mut visited = BTreeSet::new();
        while let Some(id) = stack.pop() {
            if !visited.insert(id) {
                // A cycle in the shadow tree (corrupt structure): stop
                // rather than loop forever; the resulting partial view
                // will mismatch and be reported.
                continue;
            }
            if let (Some(&key), Some(&count)) = (self.keys.get(&id), self.counts.get(&id)) {
                if count > 0 {
                    *out.entry(key).or_insert(0) += count;
                }
            }
            for link in [self.left.get(&id), self.right.get(&id)] {
                if let Some(Some(child)) = link {
                    stack.push(*child);
                }
            }
        }
        out
    }
}

impl Replayer for BstReplayer {
    fn apply_write(&mut self, var: &VarId, value: &Value) {
        let id = var.index();
        match var.space() {
            "bst.key" => {
                self.keys.insert(id, value.as_int().unwrap_or(0));
                self.structure_changed = true;
            }
            "bst.count" => {
                let count = value.as_int().unwrap_or(0).max(0) as u64;
                self.counts.insert(id, count);
                if let Some(&key) = self.keys.get(&id) {
                    self.dirty.insert(key);
                }
            }
            "bst.left" => {
                self.left.insert(id, value.as_int());
                self.structure_changed = true;
            }
            "bst.right" => {
                self.right.insert(id, value.as_int());
                self.structure_changed = true;
            }
            "bst.root" => {
                self.root = value.as_int();
                self.structure_changed = true;
            }
            other => panic!("BstReplayer: unknown variable space {other:?}"),
        }
    }

    fn view(&self) -> View {
        self.reachable_counts()
            .into_iter()
            .map(|(x, n)| (Value::from(x), Value::from(n)))
            .collect()
    }

    fn view_of(&self, key: &Value) -> Option<Value> {
        // Reachability makes per-key extraction as costly as a traversal;
        // keep a straightforward implementation (the dirty protocol below
        // falls back to full comparison whenever structure changed).
        let x = key.as_int()?;
        let counts = self.reachable_counts();
        counts.get(&x).map(|&n| Value::from(n))
    }

    fn take_dirty(&mut self) -> Option<Vec<Value>> {
        if std::mem::take(&mut self.structure_changed) {
            self.dirty.clear();
            return None; // full comparison
        }
        Some(
            std::mem::take(&mut self.dirty)
                .into_iter()
                .map(Value::from)
                .collect(),
        )
    }

    fn save_state(&self) -> Option<Value> {
        fn id_map<V: Copy>(
            map: &HashMap<i64, V>,
            encode: impl Fn(V) -> Value,
        ) -> Value {
            let mut rows: Vec<_> = map.iter().collect();
            rows.sort_by_key(|(&id, _)| id);
            Value::List(
                rows.into_iter()
                    .map(|(&id, &v)| Value::pair(Value::from(id), encode(v)))
                    .collect(),
            )
        }
        let link = |l: Option<i64>| l.map(Value::from).unwrap_or(Value::Unit);
        Some(Value::List(vec![
            id_map(&self.keys, Value::from),
            id_map(&self.counts, Value::from),
            id_map(&self.left, link),
            id_map(&self.right, link),
            self.root.map(Value::from).unwrap_or(Value::Unit),
            Value::List(self.dirty.iter().map(|&x| Value::from(x)).collect()),
            Value::from(self.structure_changed),
        ]))
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), SpecError> {
        let malformed = || SpecError::new("malformed bst-replayer state");
        fn id_map<V>(
            rows: &Value,
            decode: impl Fn(&Value) -> Result<V, SpecError>,
        ) -> Result<HashMap<i64, V>, SpecError> {
            let malformed = || SpecError::new("malformed bst-replayer state");
            let mut map = HashMap::new();
            for row in rows.as_list().ok_or_else(malformed)? {
                let (id, v) = row.as_pair().ok_or_else(malformed)?;
                map.insert(id.as_int().ok_or_else(malformed)?, decode(v)?);
            }
            Ok(map)
        }
        let parts = state.as_list().ok_or_else(malformed)?;
        let [keys_v, counts_v, left_v, right_v, root_v, dirty_v, structure_v] = parts else {
            return Err(malformed());
        };
        let int = |v: &Value| v.as_int().ok_or_else(malformed);
        let count = |v: &Value| Ok(int(v)?.max(0) as u64);
        let link = |v: &Value| Ok(v.as_int());
        let keys = id_map(keys_v, int)?;
        let counts = id_map(counts_v, count)?;
        let left = id_map(left_v, link)?;
        let right = id_map(right_v, link)?;
        let mut dirty = BTreeSet::new();
        for x in dirty_v.as_list().ok_or_else(malformed)? {
            dirty.insert(x.as_int().ok_or_else(malformed)?);
        }
        self.keys = keys;
        self.counts = counts;
        self.left = left;
        self.right = right;
        self.root = root_v.as_int();
        self.dirty = dirty;
        self.structure_changed = structure_v.as_bool().ok_or_else(malformed)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(r: &mut impl Replayer, space: &str, index: i64, value: Value) {
        r.apply_write(&VarId::new(space, index), &value);
    }

    #[test]
    fn slot_replayer_counts_valid_elements_only() {
        let mut r = SlotReplayer::new();
        w(&mut r, "elt", 0, Value::from(5i64));
        assert!(r.view().is_empty(), "reserved but not valid");
        w(&mut r, "valid", 0, Value::from(true));
        assert_eq!(r.count(5), 1);
        w(&mut r, "elt", 1, Value::from(5i64));
        w(&mut r, "valid", 1, Value::from(true));
        assert_eq!(r.count(5), 2);
        w(&mut r, "valid", 0, Value::from(false));
        assert_eq!(r.count(5), 1);
        w(&mut r, "elt", 0, Value::Unit);
        assert_eq!(r.count(5), 1);
    }

    #[test]
    fn slot_replayer_overwrite_loses_the_old_element() {
        // The Fig. 6 scenario: slot 0 reserved for 5, overwritten with 7.
        let mut r = SlotReplayer::new();
        w(&mut r, "elt", 0, Value::from(5i64));
        w(&mut r, "elt", 0, Value::from(7i64));
        w(&mut r, "valid", 0, Value::from(true));
        assert_eq!(r.count(5), 0);
        assert_eq!(r.count(7), 1);
    }

    #[test]
    fn slot_replayer_dirty_tracks_affected_values() {
        let mut r = SlotReplayer::new();
        w(&mut r, "elt", 0, Value::from(5i64));
        w(&mut r, "valid", 0, Value::from(true));
        let dirty = r.take_dirty().unwrap();
        assert_eq!(dirty, vec![Value::from(5i64)]);
        assert!(r.take_dirty().unwrap().is_empty());
        // Changing the element of a valid slot dirties both values.
        w(&mut r, "elt", 0, Value::from(9i64));
        let dirty = r.take_dirty().unwrap();
        assert_eq!(dirty, vec![Value::from(5i64), Value::from(9i64)]);
    }

    #[test]
    fn slot_replayer_view_of_matches_view() {
        let mut r = SlotReplayer::new();
        w(&mut r, "elt", 3, Value::from(8i64));
        w(&mut r, "valid", 3, Value::from(true));
        assert_eq!(r.view_of(&Value::from(8i64)), Some(Value::from(1u64)));
        assert_eq!(r.view_of(&Value::from(9i64)), None);
        assert_eq!(r.view().get(&Value::from(8i64)), Some(&Value::from(1u64)));
    }

    #[test]
    #[should_panic(expected = "unknown variable space")]
    fn slot_replayer_rejects_foreign_writes() {
        let mut r = SlotReplayer::new();
        w(&mut r, "chunk", 0, Value::Unit);
    }

    fn link(r: &mut BstReplayer, id: i64, key: i64, count: i64) {
        w(r, "bst.key", id, Value::from(key));
        w(r, "bst.count", id, Value::from(count));
    }

    #[test]
    fn bst_replayer_counts_reachable_nodes_only() {
        let mut r = BstReplayer::new();
        link(&mut r, 1, 50, 1);
        // Not yet linked from the root: invisible.
        assert!(r.view().is_empty());
        w(&mut r, "bst.root", 0, Value::from(1i64));
        assert_eq!(r.view_of(&Value::from(50i64)), Some(Value::from(1u64)));

        // A second node linked as left child.
        link(&mut r, 2, 30, 2);
        w(&mut r, "bst.left", 1, Value::from(2i64));
        assert_eq!(r.view_of(&Value::from(30i64)), Some(Value::from(2u64)));

        // An orphan node never linked: invisible (the lost-insert bug).
        link(&mut r, 3, 99, 1);
        assert_eq!(r.view_of(&Value::from(99i64)), None);

        // Unlinking the subtree hides it again.
        w(&mut r, "bst.left", 1, Value::Unit);
        assert_eq!(r.view_of(&Value::from(30i64)), None);
    }

    #[test]
    fn bst_replayer_zero_count_is_a_tombstone() {
        let mut r = BstReplayer::new();
        link(&mut r, 1, 50, 1);
        w(&mut r, "bst.root", 0, Value::from(1i64));
        w(&mut r, "bst.count", 1, Value::from(0i64));
        assert!(r.view().is_empty());
    }

    #[test]
    fn bst_replayer_structural_writes_force_full_compare() {
        let mut r = BstReplayer::new();
        link(&mut r, 1, 50, 1);
        w(&mut r, "bst.root", 0, Value::from(1i64));
        assert_eq!(r.take_dirty(), None, "structure changed");
        // Pure count updates afterwards are tracked incrementally.
        w(&mut r, "bst.count", 1, Value::from(2i64));
        assert_eq!(r.take_dirty(), Some(vec![Value::from(50i64)]));
    }

    #[test]
    fn bst_replayer_survives_a_cycle() {
        let mut r = BstReplayer::new();
        link(&mut r, 1, 10, 1);
        link(&mut r, 2, 20, 1);
        w(&mut r, "bst.root", 0, Value::from(1i64));
        w(&mut r, "bst.left", 1, Value::from(2i64));
        w(&mut r, "bst.left", 2, Value::from(1i64)); // cycle!
        // Must terminate and report both nodes once.
        let v = r.view();
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn slot_replayer_checkpoint_round_trips() {
        let mut r = SlotReplayer::new();
        w(&mut r, "elt", 0, Value::from(5i64));
        w(&mut r, "valid", 0, Value::from(true));
        w(&mut r, "elt", 1, Value::from(5i64));
        w(&mut r, "valid", 1, Value::from(true));
        w(&mut r, "elt", 2, Value::from(9i64)); // reserved, not valid
        let state = r.save_state().expect("slot replayer checkpoints");
        let mut restored = SlotReplayer::new();
        restored.restore_state(&state).unwrap();
        assert_eq!(restored.view(), r.view());
        assert_eq!(restored.count(5), 2);
        // The dirty set travels with the checkpoint.
        assert_eq!(restored.take_dirty(), r.take_dirty());
        // And the restored state keeps replaying identically.
        w(&mut restored, "valid", 2, Value::from(true));
        assert_eq!(restored.count(9), 1);
    }

    #[test]
    fn slot_replayer_rejects_malformed_checkpoints() {
        let mut r = SlotReplayer::new();
        assert!(r.restore_state(&Value::Unit).is_err());
        assert!(r.restore_state(&Value::List(vec![Value::Unit])).is_err());
    }

    #[test]
    fn bst_replayer_checkpoint_round_trips() {
        let mut r = BstReplayer::new();
        link(&mut r, 1, 50, 1);
        link(&mut r, 2, 30, 2);
        w(&mut r, "bst.root", 0, Value::from(1i64));
        w(&mut r, "bst.left", 1, Value::from(2i64));
        link(&mut r, 3, 99, 1); // orphan stays an orphan
        let state = r.save_state().expect("bst replayer checkpoints");
        let mut restored = BstReplayer::new();
        restored.restore_state(&state).unwrap();
        assert_eq!(restored.view(), r.view());
        assert_eq!(restored.view_of(&Value::from(99i64)), None);
        // The pending structure-changed flag travels with the checkpoint:
        // both sides demand a full comparison next.
        assert_eq!(restored.take_dirty(), None);
        assert_eq!(r.take_dirty(), None);
        // And the restored tree keeps replaying identically.
        w(&mut restored, "bst.count", 2, Value::from(5i64));
        assert_eq!(restored.view_of(&Value::from(30i64)), Some(Value::from(5u64)));
        assert_eq!(restored.take_dirty(), Some(vec![Value::from(30i64)]));
    }

    #[test]
    fn bst_replayer_rejects_malformed_checkpoints() {
        let mut r = BstReplayer::new();
        assert!(r.restore_state(&Value::Unit).is_err());
        assert!(r.restore_state(&Value::List(vec![Value::Unit; 3])).is_err());
    }

    #[test]
    fn bst_replayer_duplicate_keys_sum_their_counts() {
        // Two distinct reachable nodes with the same key: the view shows
        // the total multiplicity (and will mismatch a spec that expected
        // a single node — the duplicated-data-node bug shape).
        let mut r = BstReplayer::new();
        link(&mut r, 1, 50, 1);
        link(&mut r, 2, 50, 1);
        w(&mut r, "bst.root", 0, Value::from(1i64));
        w(&mut r, "bst.right", 1, Value::from(2i64));
        assert_eq!(r.view_of(&Value::from(50i64)), Some(Value::from(2u64)));
    }
}
