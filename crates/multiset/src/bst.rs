//! The binary-search-tree multiset of §7.4.2 ("Multiset-BinaryTree" in
//! Table 1).
//!
//! Each key is stored in at most one node together with its multiplicity;
//! deletion decrements the count, leaving count-0 *tombstones* that an
//! internal compression task unlinks later. Descent uses hand-over-hand
//! per-node locking; compression excludes concurrent method executions via
//! a structure read–write gate (the same pattern as Boxwood's
//! `RECLAIMLOCK`).
//!
//! [`BstVariant::UnlockParentEarly`] reproduces the Table 1 bug
//! "unlocking parent before insertion": when linking a freshly created
//! node, the buggy variant releases the parent's lock before the link
//! write and re-acquires it without re-checking the child pointer, so two
//! concurrent inserts under the same parent can overwrite each other's
//! link and silently lose a node.

use std::sync::Arc;

use vyrd_rt::sync::{Mutex, RwLock};
use vyrd_core::instrument::{BlockGuard, MethodSession};
use vyrd_core::log::{EventLog, ThreadLogger};
use vyrd_core::{Value, VarId};

use crate::spec::methods;

/// Which insert linking discipline to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BstVariant {
    /// The parent stays locked across the link write.
    #[default]
    Correct,
    /// The parent lock is released before the link write and re-acquired
    /// without re-validation — the lost-insert race.
    UnlockParentEarly,
}

#[derive(Debug)]
struct NodeData {
    key: i64,
    count: u64,
    left: Option<usize>,
    right: Option<usize>,
}

#[derive(Debug)]
struct Node {
    data: Mutex<NodeData>,
}

#[derive(Debug)]
struct Inner {
    /// Append-only node arena; ids are indices.
    nodes: RwLock<Vec<Arc<Node>>>,
    root: Mutex<Option<usize>>,
    /// Read = a public method is in flight; write = compression may
    /// restructure.
    gate: RwLock<()>,
    variant: BstVariant,
    log: EventLog,
}

/// The concurrent BST multiset.
///
/// # Examples
///
/// ```
/// use vyrd_core::log::{EventLog, LogMode};
/// use vyrd_multiset::{BstMultiset, BstVariant};
///
/// let log = EventLog::in_memory(LogMode::Io);
/// let ms = BstMultiset::new(BstVariant::Correct, log);
/// let h = ms.handle();
/// h.insert(50);
/// h.insert(30);
/// h.insert(50);
/// assert!(h.lookup(30));
/// assert!(h.delete(50));
/// assert!(h.lookup(50)); // multiplicity was 2
/// ```
#[derive(Clone, Debug)]
pub struct BstMultiset {
    inner: Arc<Inner>,
}

impl BstMultiset {
    /// Creates an empty multiset.
    pub fn new(variant: BstVariant, log: EventLog) -> BstMultiset {
        BstMultiset {
            inner: Arc::new(Inner {
                nodes: RwLock::new(Vec::new()),
                root: Mutex::new(None),
                gate: RwLock::new(()),
                variant,
                log,
            }),
        }
    }

    /// The event log this multiset records into.
    pub fn log(&self) -> &EventLog {
        &self.inner.log
    }

    /// Creates a per-thread handle with a fresh thread id.
    pub fn handle(&self) -> BstMultisetHandle {
        BstMultisetHandle {
            ms: self.clone(),
            logger: self.inner.log.logger(),
        }
    }
}

/// Per-thread access to a [`BstMultiset`].
#[derive(Clone, Debug)]
pub struct BstMultisetHandle {
    ms: BstMultiset,
    logger: ThreadLogger,
}

impl BstMultisetHandle {
    fn node(&self, id: usize) -> Arc<Node> {
        Arc::clone(&self.ms.inner.nodes.read()[id])
    }

    /// Allocates a node (not yet linked; invisible to the view until a
    /// link write publishes it).
    fn alloc_node(&self, key: i64) -> usize {
        let mut nodes = self.ms.inner.nodes.write();
        let id = nodes.len();
        nodes.push(Arc::new(Node {
            data: Mutex::new(NodeData {
                key,
                count: 1,
                left: None,
                right: None,
            }),
        }));
        drop(nodes);
        self.logger.write(VarId::new("bst.key", id as i64), Value::from(key));
        self.logger
            .write(VarId::new("bst.count", id as i64), Value::from(1i64));
        id
    }

    fn log_count(&self, id: usize, count: u64) {
        self.logger
            .write(VarId::new("bst.count", id as i64), Value::from(count as i64));
    }

    fn log_link(&self, parent: usize, right: bool, child: Option<usize>) {
        let space = if right { "bst.right" } else { "bst.left" };
        self.logger.write(
            VarId::new(space, parent as i64),
            Value::from(child.map(|c| c as i64)),
        );
    }

    /// `Insert(x)`: adds one occurrence of `x` (always succeeds).
    pub fn insert(&self, x: i64) -> Value {
        let _lease = self.ms.inner.gate.read();
        let mut session = MethodSession::enter(&self.logger, methods::INSERT, &[Value::from(x)]);
        // Empty tree: install a root.
        let mut root = self.ms.inner.root.lock();
        let Some(root_id) = *root else {
            let id = self.alloc_node(x);
            let block = BlockGuard::enter(&self.logger);
            *root = Some(id);
            self.logger
                .write(VarId::new("bst.root", 0), Value::from(id as i64));
            session.commit();
            drop(block);
            drop(root);
            return session.exit(Value::success());
        };
        // Descend one locked node at a time. In the correct variant every
        // decision made under a node's lock (key match, child presence) is
        // acted on while that lock is still held, so a concurrent insert
        // cannot invalidate it.
        let mut cur_id = root_id;
        drop(root);
        loop {
            let cur_arc = self.node(cur_id);
            let mut cur = cur_arc.data.lock();
            if cur.key == x {
                let new_count = cur.count + 1;
                cur.count = new_count;
                let block = BlockGuard::enter(&self.logger);
                self.log_count(cur_id, new_count);
                session.commit();
                drop(block);
                drop(cur);
                return session.exit(Value::success());
            }
            let go_right = x > cur.key;
            let child = if go_right { cur.right } else { cur.left };
            match child {
                Some(next_id) => {
                    drop(cur);
                    cur_id = next_id;
                }
                None => {
                    match self.ms.inner.variant {
                        BstVariant::Correct => {
                            // Link while the parent lock (which observed
                            // the empty child pointer) is still held.
                            let id = self.alloc_node(x);
                            let block = BlockGuard::enter(&self.logger);
                            if go_right {
                                cur.right = Some(id);
                            } else {
                                cur.left = Some(id);
                            }
                            self.log_link(cur_id, go_right, Some(id));
                            session.commit();
                            drop(block);
                            drop(cur);
                        }
                        BstVariant::UnlockParentEarly => {
                            // BUG: the parent lock is dropped before the
                            // new node is linked...
                            drop(cur);
                            let id = self.alloc_node(x);
                            std::thread::yield_now();
                            // ...and the link write does not re-check that
                            // the child pointer is still empty, so it can
                            // overwrite a link a concurrent insert just
                            // published — losing that node.
                            let mut parent = cur_arc.data.lock();
                            let block = BlockGuard::enter(&self.logger);
                            if go_right {
                                parent.right = Some(id);
                            } else {
                                parent.left = Some(id);
                            }
                            self.log_link(cur_id, go_right, Some(id));
                            session.commit();
                            drop(block);
                            drop(parent);
                        }
                    }
                    return session.exit(Value::success());
                }
            }
        }
    }

    /// Descends to the node holding `x`, returning its id and lock.
    fn find_node(&self, x: i64) -> Option<(usize, Arc<Node>)> {
        let root = self.ms.inner.root.lock();
        let mut cur_id = (*root)?;
        drop(root);
        loop {
            let arc = self.node(cur_id);
            let data = arc.data.lock();
            if data.key == x {
                drop(data);
                return Some((cur_id, arc));
            }
            let child = if x > data.key { data.right } else { data.left };
            drop(data);
            cur_id = child?;
        }
    }

    /// `Delete(x)`: removes one occurrence; returns whether one was found.
    pub fn delete(&self, x: i64) -> bool {
        let _lease = self.ms.inner.gate.read();
        let mut session = MethodSession::enter(&self.logger, methods::DELETE, &[Value::from(x)]);
        if let Some((id, arc)) = self.find_node(x) {
            let mut data = arc.data.lock();
            if data.count > 0 {
                let new_count = data.count - 1;
                data.count = new_count;
                let block = BlockGuard::enter(&self.logger);
                self.log_count(id, new_count);
                session.commit();
                drop(block);
                drop(data);
                session.exit(Value::from(true));
                return true;
            }
        }
        session.commit();
        session.exit(Value::from(false));
        false
    }

    /// `LookUp(x)`: is `x` a member? Observer.
    pub fn lookup(&self, x: i64) -> bool {
        let _lease = self.ms.inner.gate.read();
        let session = MethodSession::enter(&self.logger, methods::LOOKUP, &[Value::from(x)]);
        let found = match self.find_node(x) {
            Some((_, arc)) => arc.data.lock().count > 0,
            None => false,
        };
        session.exit(Value::from(found));
        found
    }

    /// One compression pass: unlinks tombstoned (count = 0) nodes that
    /// have at most one child, splicing the child into their place.
    ///
    /// Holds the structure gate exclusively, so no method execution is in
    /// flight. Logged as a `Compress` mutator in one commit block; view
    /// refinement checks it leaves the contents unchanged (§7.2.3).
    pub fn compress(&self) {
        let _gate = self.ms.inner.gate.write();
        let mut session = MethodSession::enter(&self.logger, methods::COMPRESS, &[]);
        let block = BlockGuard::enter(&self.logger);
        // With the gate held exclusively, traverse freely.
        while let Some(victim) = self.find_tombstone_with_le1_child() {
            self.splice_out(victim);
        }
        session.commit();
        drop(block);
        session.exit(Value::Unit);
    }

    /// Finds `(parent, is_right_child, node)` for some splice-able
    /// tombstone, or the root itself (`parent = None`).
    fn find_tombstone_with_le1_child(&self) -> Option<(Option<(usize, bool)>, usize)> {
        let root = *self.ms.inner.root.lock();
        let mut stack: Vec<(Option<(usize, bool)>, usize)> =
            root.map(|r| (None, r)).into_iter().collect();
        while let Some((parent, id)) = stack.pop() {
            let arc = self.node(id);
            let d = arc.data.lock();
            if d.count == 0 && (d.left.is_none() || d.right.is_none()) {
                return Some((parent, id));
            }
            if let Some(l) = d.left {
                stack.push((Some((id, false)), l));
            }
            if let Some(r) = d.right {
                stack.push((Some((id, true)), r));
            }
        }
        None
    }

    fn splice_out(&self, (parent, id): (Option<(usize, bool)>, usize)) {
        let arc = self.node(id);
        let d = arc.data.lock();
        let replacement = d.left.or(d.right);
        drop(d);
        match parent {
            None => {
                let mut root = self.ms.inner.root.lock();
                *root = replacement;
                self.logger.write(
                    VarId::new("bst.root", 0),
                    Value::from(replacement.map(|r| r as i64)),
                );
            }
            Some((pid, is_right)) => {
                let parc = self.node(pid);
                let mut pd = parc.data.lock();
                if is_right {
                    pd.right = replacement;
                } else {
                    pd.left = replacement;
                }
                self.log_link(pid, is_right, replacement);
            }
        }
    }
}
