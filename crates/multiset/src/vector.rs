//! The Vector-backed multiset of §7.4.2 ("Multiset-Vector" in Tables 1–2).
//!
//! Same slot discipline as [`ArrayMultiset`](crate::ArrayMultiset) —
//! per-slot locks, `elt` + `valid` fields, `FindSlot` reservation — but the
//! slot vector *grows* on demand and an internal **compression task**
//! compacts the storage by moving valid elements from high slots into free
//! low slots and truncating the tail.
//!
//! Concurrency structure:
//!
//! * public methods hold a **read** lease on the structure lock for their
//!   whole duration (slots may be scanned without fear of compaction
//!   moving elements mid-scan);
//! * growth appends slots under a brief **write** hold;
//! * compression holds the **write** lease, so it runs only between method
//!   executions — the same pattern as Boxwood's `RECLAIMLOCK` (Fig. 8).
//!
//! Compression is logged as a `Compress` mutator whose specification
//! transition leaves the multiset unchanged, so view refinement verifies
//! compression's atomic state update does not disturb the abstract
//! contents (the §7.2.3 check).

use std::sync::Arc;

use vyrd_rt::sync::{Mutex, RwLock};
use vyrd_core::instrument::{BlockGuard, MethodSession};
use vyrd_core::log::{EventLog, ThreadLogger};
use vyrd_core::{Value, VarId};

use crate::array::FindSlotVariant;
use crate::spec::methods;

#[derive(Debug, Default)]
struct SlotState {
    elt: Option<i64>,
    valid: bool,
}

#[derive(Debug)]
struct Slot {
    /// Stable identity used in the log; survives compaction.
    id: i64,
    state: Mutex<SlotState>,
}

#[derive(Debug)]
struct Inner {
    /// Structure lock: read = slot vector is stable, write = may grow,
    /// compact, or move elements.
    slots: RwLock<Vec<Arc<Slot>>>,
    next_id: Mutex<i64>,
    variant: FindSlotVariant,
    log: EventLog,
}

/// The growable, compacting multiset ("Multiset-Vector").
///
/// # Examples
///
/// ```
/// use vyrd_core::log::{EventLog, LogMode};
/// use vyrd_multiset::{FindSlotVariant, VectorMultiset};
///
/// let log = EventLog::in_memory(LogMode::Io);
/// let ms = VectorMultiset::new(FindSlotVariant::Correct, log);
/// let h = ms.handle();
/// assert!(h.insert(1).is_success());
/// assert!(h.insert(2).is_success());
/// assert!(h.delete(1));
/// h.compress();
/// assert!(h.lookup(2));
/// assert!(!h.lookup(1));
/// ```
#[derive(Clone, Debug)]
pub struct VectorMultiset {
    inner: Arc<Inner>,
}

impl VectorMultiset {
    /// Creates an empty multiset.
    pub fn new(variant: FindSlotVariant, log: EventLog) -> VectorMultiset {
        VectorMultiset {
            inner: Arc::new(Inner {
                slots: RwLock::new(Vec::new()),
                next_id: Mutex::new(0),
                variant,
                log,
            }),
        }
    }

    /// The event log this multiset records into.
    pub fn log(&self) -> &EventLog {
        &self.inner.log
    }

    /// Current number of slots (occupied or free).
    pub fn slot_count(&self) -> usize {
        self.inner.slots.read().len()
    }

    /// Creates a per-thread handle with a fresh thread id.
    pub fn handle(&self) -> VectorMultisetHandle {
        VectorMultisetHandle {
            ms: self.clone(),
            logger: self.inner.log.logger(),
        }
    }
}

/// Per-thread access to a [`VectorMultiset`].
#[derive(Clone, Debug)]
pub struct VectorMultisetHandle {
    ms: VectorMultiset,
    logger: ThreadLogger,
}

impl VectorMultisetHandle {
    /// Reserves a slot for `x` under the read lease, growing the vector if
    /// the scan finds no free slot. Never fails (storage is unbounded).
    fn find_or_grow_slot(&self, x: i64) -> Arc<Slot> {
        {
            let slots = self.ms.inner.slots.read();
            for slot in slots.iter() {
                match self.ms.inner.variant {
                    FindSlotVariant::Correct => {
                        let mut state = slot.state.lock();
                        if state.elt.is_none() {
                            state.elt = Some(x);
                            self.logger
                                .write(VarId::new("elt", slot.id), Value::from(x));
                            return Arc::clone(slot);
                        }
                    }
                    FindSlotVariant::Buggy => {
                        // Fig. 5: check without holding the lock across
                        // the reservation, and no re-check after.
                        let free = slot.state.lock().elt.is_none();
                        if free {
                            std::thread::yield_now();
                            let mut state = slot.state.lock();
                            state.elt = Some(x);
                            self.logger
                                .write(VarId::new("elt", slot.id), Value::from(x));
                            return Arc::clone(slot);
                        }
                    }
                }
            }
        }
        // No free slot: grow by one under the write lock, reserving the
        // new slot for `x` in the same critical section. (If the slot
        // were pushed empty and reserved on a later re-scan, a
        // concurrently spinning compression task could truncate it before
        // the re-scan ever saw it — a livelock.)
        let mut slots = self.ms.inner.slots.write();
        let id = {
            let mut next = self.ms.inner.next_id.lock();
            let id = *next;
            *next += 1;
            id
        };
        let slot = Arc::new(Slot {
            id,
            state: Mutex::new(SlotState {
                elt: Some(x),
                valid: false,
            }),
        });
        self.logger.write(VarId::new("elt", id), Value::from(x));
        slots.push(Arc::clone(&slot));
        slot
    }

    /// `Insert(x)`: adds one occurrence of `x`. The growable storage never
    /// rejects, so this always succeeds.
    pub fn insert(&self, x: i64) -> Value {
        let mut session = MethodSession::enter(&self.logger, methods::INSERT, &[Value::from(x)]);
        let slot = self.find_or_grow_slot(x);
        {
            let mut state = slot.state.lock();
            let block = BlockGuard::enter(&self.logger);
            state.valid = true;
            self.logger
                .write(VarId::new("valid", slot.id), Value::from(true));
            session.commit();
            drop(block);
        }
        session.exit(Value::success())
    }

    /// `InsertPair(x, y)`: atomically adds both `x` and `y`.
    pub fn insert_pair(&self, x: i64, y: i64) -> Value {
        let args = [Value::from(x), Value::from(y)];
        let mut session = MethodSession::enter(&self.logger, methods::INSERT_PAIR, &args);
        let sx = self.find_or_grow_slot(x);
        let sy = self.find_or_grow_slot(y);
        if sx.id == sy.id {
            // Only reachable through the FindSlot race (a concurrent
            // overwrite + delete can recycle a reservation this thread
            // still believes it owns). Java's reentrant `synchronized`
            // would lock the single slot once; mirror that instead of
            // self-deadlocking — the refinement checker then reports the
            // resulting lost element.
            let mut state = sx.state.lock();
            let block = BlockGuard::enter(&self.logger);
            state.valid = true;
            self.logger
                .write(VarId::new("valid", sx.id), Value::from(true));
            session.commit();
            drop(block);
            drop(state);
            return session.exit(Value::success());
        }
        // Lock both slots in id order.
        let (lo, hi) = if sx.id < sy.id { (&sx, &sy) } else { (&sy, &sx) };
        let mut lo_state = lo.state.lock();
        let mut hi_state = hi.state.lock();
        let block = BlockGuard::enter(&self.logger);
        lo_state.valid = true;
        self.logger
            .write(VarId::new("valid", lo.id), Value::from(true));
        hi_state.valid = true;
        self.logger
            .write(VarId::new("valid", hi.id), Value::from(true));
        session.commit();
        drop(block);
        drop(hi_state);
        drop(lo_state);
        session.exit(Value::success())
    }

    /// `Delete(x)`: removes one occurrence; returns whether one was found.
    pub fn delete(&self, x: i64) -> bool {
        let mut session = MethodSession::enter(&self.logger, methods::DELETE, &[Value::from(x)]);
        {
            let slots = self.ms.inner.slots.read();
            for slot in slots.iter() {
                let mut state = slot.state.lock();
                if state.elt == Some(x) && state.valid {
                    let block = BlockGuard::enter(&self.logger);
                    state.valid = false;
                    self.logger
                        .write(VarId::new("valid", slot.id), Value::from(false));
                    state.elt = None;
                    self.logger.write(VarId::new("elt", slot.id), Value::Unit);
                    session.commit();
                    drop(block);
                    drop(state);
                    drop(slots);
                    session.exit(Value::from(true));
                    return true;
                }
            }
        }
        session.commit();
        session.exit(Value::from(false));
        false
    }

    /// `LookUp(x)`: is `x` a member? Observer.
    pub fn lookup(&self, x: i64) -> bool {
        let session = MethodSession::enter(&self.logger, methods::LOOKUP, &[Value::from(x)]);
        let found = {
            let slots = self.ms.inner.slots.read();
            slots.iter().any(|slot| {
                let state = slot.state.lock();
                state.elt == Some(x) && state.valid
            })
        };
        session.exit(Value::from(found));
        found
    }

    /// One compression pass: moves valid elements from high slots into
    /// free low slots and drops trailing empty slots.
    ///
    /// Runs under the structure write lock, so no public method is in
    /// flight. Logged as a `Compress` mutator whose entire state update is
    /// one commit block — view refinement checks it leaves the multiset
    /// contents unchanged (§7.2.3).
    pub fn compress(&self) {
        let mut session = MethodSession::enter(&self.logger, methods::COMPRESS, &[]);
        {
            let mut slots = self.ms.inner.slots.write();
            let block = BlockGuard::enter(&self.logger);
            // Two-finger compaction over the current snapshot.
            let mut free = 0usize;
            for occupied in 0..slots.len() {
                let (elt, valid) = {
                    let s = slots[occupied].state.lock();
                    (s.elt, s.valid)
                };
                let Some(x) = elt else { continue };
                if !valid {
                    // A reservation with no membership: some thread is
                    // mid-insert; compression must leave it alone. (Cannot
                    // happen while we hold the write lock *and* methods
                    // hold read leases for their duration, but stay safe.)
                    continue;
                }
                // Find the first free slot before `occupied`.
                while free < occupied && slots[free].state.lock().elt.is_some() {
                    free += 1;
                }
                if free >= occupied {
                    continue;
                }
                let (src, dst) = (&slots[occupied], &slots[free]);
                // Slot locks are always taken in id order (the vector is
                // id-sorted and free < occupied), matching insert_pair's
                // ordering discipline.
                let mut dst_state = dst.state.lock();
                let mut src_state = src.state.lock();
                dst_state.elt = Some(x);
                self.logger.write(VarId::new("elt", dst.id), Value::from(x));
                dst_state.valid = true;
                self.logger
                    .write(VarId::new("valid", dst.id), Value::from(true));
                src_state.valid = false;
                self.logger
                    .write(VarId::new("valid", src.id), Value::from(false));
                src_state.elt = None;
                self.logger.write(VarId::new("elt", src.id), Value::Unit);
            }
            // Drop trailing empty slots.
            while let Some(last) = slots.last() {
                if last.state.lock().elt.is_none() {
                    slots.pop();
                } else {
                    break;
                }
            }
            session.commit();
            drop(block);
        }
        session.exit(Value::Unit);
    }
}
