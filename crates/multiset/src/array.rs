//! The array-based concurrent multiset of §2 (Figs. 2, 4, 5).
//!
//! Elements live in a fixed array `A[0..n-1]`; each slot carries an `elt`
//! field and a `valid` bit (the Fig. 4 extension) and is protected by its
//! own lock. `FindSlot` reserves a slot by writing `elt` under the slot
//! lock; an element is a member of the multiset only once its `valid` bit
//! is set — that write is the commit action of the inserting method.
//!
//! [`FindSlotVariant::Buggy`] reproduces Fig. 5: the emptiness check is
//! performed *before* acquiring the slot lock and is not repeated after,
//! so two concurrent `FindSlot`s can both reserve the same slot and one
//! element is silently overwritten (the Fig. 6 refinement violation).

use std::sync::Arc;

use vyrd_rt::sync::Mutex;
use vyrd_core::instrument::{BlockGuard, MethodSession};
use vyrd_core::log::{EventLog, ThreadLogger};
use vyrd_core::{Value, VarId};

use crate::spec::methods;

/// Which `FindSlot` implementation to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FindSlotVariant {
    /// Fig. 2: the emptiness check and the reservation happen under the
    /// slot lock.
    #[default]
    Correct,
    /// Fig. 5: "moving acquire in FindSlot" — the emptiness check races
    /// with concurrent reservations.
    Buggy,
}

#[derive(Debug, Default)]
struct SlotState {
    elt: Option<i64>,
    valid: bool,
}

#[derive(Debug)]
struct Inner {
    slots: Box<[Mutex<SlotState>]>,
    variant: FindSlotVariant,
    log: EventLog,
}

/// The concurrent array multiset (Figs. 2 and 4).
///
/// Cheap to clone; clones share the same storage. Each thread should
/// obtain its own [`ArrayMultisetHandle`] via [`ArrayMultiset::handle`].
///
/// # Examples
///
/// ```
/// use vyrd_core::log::{EventLog, LogMode};
/// use vyrd_multiset::{ArrayMultiset, FindSlotVariant};
///
/// let log = EventLog::in_memory(LogMode::Io);
/// let ms = ArrayMultiset::new(8, FindSlotVariant::Correct, log);
/// let h = ms.handle();
/// assert!(h.insert(5).is_success());
/// assert!(h.lookup(5));
/// assert!(h.delete(5));
/// assert!(!h.lookup(5));
/// ```
#[derive(Clone, Debug)]
pub struct ArrayMultiset {
    inner: Arc<Inner>,
}

impl ArrayMultiset {
    /// Creates a multiset with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, variant: FindSlotVariant, log: EventLog) -> ArrayMultiset {
        assert!(capacity > 0, "multiset capacity must be positive");
        let slots = (0..capacity)
            .map(|_| Mutex::new(SlotState::default()))
            .collect();
        ArrayMultiset {
            inner: Arc::new(Inner {
                slots,
                variant,
                log,
            }),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }

    /// The event log this multiset records into.
    pub fn log(&self) -> &EventLog {
        &self.inner.log
    }

    /// Creates a per-thread handle with a fresh thread id.
    pub fn handle(&self) -> ArrayMultisetHandle {
        ArrayMultisetHandle {
            ms: self.clone(),
            logger: self.inner.log.logger(),
        }
    }
}

/// Per-thread access to an [`ArrayMultiset`].
#[derive(Clone, Debug)]
pub struct ArrayMultisetHandle {
    ms: ArrayMultiset,
    logger: ThreadLogger,
}

impl ArrayMultisetHandle {
    fn slots(&self) -> &[Mutex<SlotState>] {
        &self.ms.inner.slots
    }

    /// `FindSlot(x)` (Fig. 2 / Fig. 5): reserves a free slot for `x` and
    /// returns its index, or `-1` if the array is full.
    fn find_slot(&self, x: i64) -> i64 {
        match self.ms.inner.variant {
            FindSlotVariant::Correct => {
                for (i, slot) in self.slots().iter().enumerate() {
                    let mut state = slot.lock();
                    if state.elt.is_none() {
                        state.elt = Some(x);
                        self.logger.write(VarId::new("elt", i as i64), Value::from(x));
                        return i as i64;
                    }
                }
                -1
            }
            FindSlotVariant::Buggy => {
                for (i, slot) in self.slots().iter().enumerate() {
                    // Fig. 5 line 2: the check happens without the lock...
                    let free = slot.lock().elt.is_none();
                    if free {
                        // ...and the reservation does not re-check, so a
                        // concurrent FindSlot that reserved slot i in the
                        // meantime is silently overwritten.
                        std::thread::yield_now();
                        let mut state = slot.lock();
                        state.elt = Some(x);
                        self.logger.write(VarId::new("elt", i as i64), Value::from(x));
                        return i as i64;
                    }
                }
                -1
            }
        }
    }

    /// Releases a reservation made by [`find_slot`](Self::find_slot)
    /// (Fig. 4 line 6).
    fn release_slot(&self, i: i64) {
        let mut state = self.slots()[i as usize].lock();
        state.elt = None;
        self.logger.write(VarId::new("elt", i), Value::Unit);
    }

    /// `Insert(x)`: adds one occurrence of `x`. Fails (leaving the
    /// multiset unchanged) when no slot is free.
    ///
    /// The commit action of a successful insert is the `valid := true`
    /// write; a failing insert commits at the point the full scan
    /// completes.
    pub fn insert(&self, x: i64) -> Value {
        let mut session = MethodSession::enter(&self.logger, methods::INSERT, &[Value::from(x)]);
        let i = self.find_slot(x);
        if i == -1 {
            session.commit();
            return session.exit(Value::failure());
        }
        {
            let mut state = self.slots()[i as usize].lock();
            let block = BlockGuard::enter(&self.logger);
            state.valid = true;
            self.logger.write(VarId::new("valid", i), Value::from(true));
            session.commit();
            drop(block);
        }
        session.exit(Value::success())
    }

    /// `InsertPair(x, y)` (Fig. 4): atomically adds both `x` and `y`, or
    /// neither.
    ///
    /// The commit block spans the two `valid := true` writes (Fig. 4
    /// lines 9–13); the commit point is the end of the block.
    pub fn insert_pair(&self, x: i64, y: i64) -> Value {
        let args = [Value::from(x), Value::from(y)];
        let mut session = MethodSession::enter(&self.logger, methods::INSERT_PAIR, &args);
        let i = self.find_slot(x);
        if i == -1 {
            session.commit();
            return session.exit(Value::failure());
        }
        let j = self.find_slot(y);
        if j == -1 {
            self.release_slot(i);
            session.commit();
            return session.exit(Value::failure());
        }
        if i == j {
            // Only reachable through the Fig. 5 FindSlot race (a
            // concurrent overwrite + delete can recycle a reservation this
            // thread still believes it owns). Java's reentrant
            // `synchronized(A[i])` would take the single lock once; mirror
            // that instead of self-deadlocking — the refinement checker
            // then reports the lost element.
            let mut state = self.slots()[i as usize].lock();
            let block = BlockGuard::enter(&self.logger);
            state.valid = true;
            self.logger.write(VarId::new("valid", i), Value::from(true));
            session.commit();
            drop(block);
            drop(state);
            return session.exit(Value::success());
        }
        // Fig. 4 locks A[i] then A[j]; we take the two distinct slot locks
        // in index order to rule out a lock-order inversion between
        // concurrent pairs (possible once deletes free low slots).
        let (lo, hi) = (i.min(j) as usize, i.max(j) as usize);
        let mut lo_guard = self.slots()[lo].lock();
        let mut hi_guard = self.slots()[hi].lock();
        let block = BlockGuard::enter(&self.logger);
        lo_guard.valid = true;
        self.logger
            .write(VarId::new("valid", lo as i64), Value::from(true));
        hi_guard.valid = true;
        self.logger
            .write(VarId::new("valid", hi as i64), Value::from(true));
        session.commit(); // Fig. 4 line 13: end of the commit block
        drop(block);
        drop(hi_guard);
        drop(lo_guard);
        session.exit(Value::success())
    }

    /// `Delete(x)`: removes one occurrence of `x`; returns whether an
    /// occurrence was found. The commit action of a successful delete is
    /// the `valid := false` write.
    pub fn delete(&self, x: i64) -> bool {
        let mut session = MethodSession::enter(&self.logger, methods::DELETE, &[Value::from(x)]);
        for (i, slot) in self.slots().iter().enumerate() {
            let mut state = slot.lock();
            if state.elt == Some(x) && state.valid {
                let block = BlockGuard::enter(&self.logger);
                state.valid = false;
                self.logger
                    .write(VarId::new("valid", i as i64), Value::from(false));
                state.elt = None;
                self.logger.write(VarId::new("elt", i as i64), Value::Unit);
                session.commit();
                drop(block);
                drop(state);
                session.exit(Value::from(true));
                return true;
            }
        }
        session.commit();
        session.exit(Value::from(false));
        false
    }

    /// `LookUp(x)`: is `x` a member? Observer — not commit-annotated; the
    /// checker validates the return value against every specification
    /// state between call and return (§4.3).
    pub fn lookup(&self, x: i64) -> bool {
        let session = MethodSession::enter(&self.logger, methods::LOOKUP, &[Value::from(x)]);
        for slot in self.slots() {
            let state = slot.lock();
            if state.elt == Some(x) && state.valid {
                drop(state);
                session.exit(Value::from(true));
                return true;
            }
        }
        session.exit(Value::from(false));
        false
    }
}
