//! Using the atomized implementation as the specification (§4.4).
//!
//! "If a separate specification does not exist, our technique enables the
//! use of an atomized version of the same implementation code as the
//! specification": the program is forced into method-atomic executions
//! (conceptually via a global lock) and each method is re-parameterized to
//! take the observed return value as an input that steers it to the
//! matching execution path.
//!
//! [`AtomizedArrayMultiset`] is that transformation applied to the Fig. 2 /
//! Fig. 4 array multiset: a *sequential* slot array whose transitions are
//! driven by `(method, args, ret)` signatures. It implements
//! [`Spec`], so it can replace [`MultisetSpec`](crate::MultisetSpec) in
//! either checker — demonstrating the §4.4 decomposition where the
//! atomized implementation stands in for a higher-level specification.

use vyrd_core::spec::{MethodKind, Spec, SpecEffect, SpecError};
use vyrd_core::view::View;
use vyrd_core::{MethodId, Value};

use crate::spec::methods;

/// The sequential, atomized array multiset of §4.4.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AtomizedArrayMultiset {
    slots: Vec<Option<i64>>,
}

impl AtomizedArrayMultiset {
    /// Creates an atomized multiset with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> AtomizedArrayMultiset {
        assert!(capacity > 0, "multiset capacity must be positive");
        AtomizedArrayMultiset {
            slots: vec![None; capacity],
        }
    }

    fn find_slot(&mut self, x: i64) -> Option<usize> {
        let i = self.slots.iter().position(Option::is_none)?;
        self.slots[i] = Some(x);
        Some(i)
    }

    fn free_slots(&self) -> usize {
        self.slots.iter().filter(|s| s.is_none()).count()
    }

    fn contains(&self, x: i64) -> bool {
        self.slots.contains(&Some(x))
    }

    fn int_arg(args: &[Value], i: usize) -> Result<i64, SpecError> {
        args.get(i)
            .and_then(Value::as_int)
            .ok_or_else(|| SpecError::new(format!("argument {i} is not an integer")))
    }
}

impl Spec for AtomizedArrayMultiset {
    fn kind(&self, method: &MethodId) -> MethodKind {
        if method.name() == methods::LOOKUP {
            MethodKind::Observer
        } else {
            MethodKind::Mutator
        }
    }

    fn apply(
        &mut self,
        method: &MethodId,
        args: &[Value],
        ret: &Value,
    ) -> Result<SpecEffect, SpecError> {
        match method.name() {
            methods::INSERT => {
                let x = Self::int_arg(args, 0)?;
                if ret.is_success() {
                    // The atomized code path for a successful insert: a
                    // slot must be available.
                    match self.find_slot(x) {
                        Some(_) => Ok(SpecEffect::touching([x])),
                        None => Err(SpecError::new(
                            "Insert returned success but the atomized array is full",
                        )),
                    }
                } else if ret.is_failure() {
                    // Sequentially, Insert fails only when the array is
                    // full; a concurrent implementation may also fail under
                    // contention, which the atomized spec permits by
                    // leaving the state unchanged either way.
                    Ok(SpecEffect::unchanged())
                } else {
                    Err(SpecError::new(format!(
                        "Insert may return success or failure, not {ret}"
                    )))
                }
            }
            methods::INSERT_PAIR => {
                let x = Self::int_arg(args, 0)?;
                let y = Self::int_arg(args, 1)?;
                if ret.is_success() {
                    if self.free_slots() < 2 {
                        return Err(SpecError::new(
                            "InsertPair returned success but fewer than two slots are free",
                        ));
                    }
                    self.find_slot(x);
                    self.find_slot(y);
                    Ok(SpecEffect::touching([x, y]))
                } else if ret.is_failure() {
                    Ok(SpecEffect::unchanged())
                } else {
                    Err(SpecError::new(format!(
                        "InsertPair may return success or failure, not {ret}"
                    )))
                }
            }
            methods::DELETE => {
                let x = Self::int_arg(args, 0)?;
                match ret.as_bool() {
                    Some(true) => match self.slots.iter().position(|s| *s == Some(x)) {
                        Some(i) => {
                            self.slots[i] = None;
                            Ok(SpecEffect::touching([x]))
                        }
                        None => Err(SpecError::new(format!(
                            "Delete({x}) returned true but {x} is not present"
                        ))),
                    },
                    Some(false) => Ok(SpecEffect::unchanged()),
                    None => Err(SpecError::new(format!(
                        "Delete returns a boolean, not {ret}"
                    ))),
                }
            }
            other => Err(SpecError::new(format!("unknown mutator {other}"))),
        }
    }

    fn accepts_observation(&self, method: &MethodId, args: &[Value], ret: &Value) -> bool {
        method.name() == methods::LOOKUP
            && match args.first().and_then(Value::as_int) {
                Some(x) => ret.as_bool() == Some(self.contains(x)),
                None => false,
            }
    }

    fn view(&self) -> View {
        let mut counts: std::collections::BTreeMap<i64, u64> = Default::default();
        for slot in self.slots.iter().flatten() {
            *counts.entry(*slot).or_insert(0) += 1;
        }
        counts
            .into_iter()
            .map(|(x, n)| (Value::from(x), Value::from(n)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(name: &str) -> MethodId {
        MethodId::from(name)
    }

    fn ints(xs: &[i64]) -> Vec<Value> {
        xs.iter().map(|&x| Value::from(x)).collect()
    }

    #[test]
    fn successful_insert_fills_a_slot() {
        let mut s = AtomizedArrayMultiset::new(2);
        s.apply(&m("Insert"), &ints(&[5]), &Value::success()).unwrap();
        assert!(s.contains(5));
        assert_eq!(s.free_slots(), 1);
    }

    #[test]
    fn success_with_full_array_is_rejected() {
        let mut s = AtomizedArrayMultiset::new(1);
        s.apply(&m("Insert"), &ints(&[5]), &Value::success()).unwrap();
        let err = s
            .apply(&m("Insert"), &ints(&[6]), &Value::success())
            .unwrap_err();
        assert!(err.message().contains("full"));
        // failure is fine at any time.
        s.apply(&m("Insert"), &ints(&[6]), &Value::failure()).unwrap();
    }

    #[test]
    fn insert_pair_needs_two_slots() {
        let mut s = AtomizedArrayMultiset::new(3);
        s.apply(&m("Insert"), &ints(&[1]), &Value::success()).unwrap();
        s.apply(&m("Insert"), &ints(&[2]), &Value::success()).unwrap();
        assert!(s
            .apply(&m("InsertPair"), &ints(&[3, 4]), &Value::success())
            .is_err());
        let mut s2 = AtomizedArrayMultiset::new(3);
        s2.apply(&m("InsertPair"), &ints(&[3, 4]), &Value::success())
            .unwrap();
        assert!(s2.contains(3) && s2.contains(4));
    }

    #[test]
    fn delete_frees_the_slot() {
        let mut s = AtomizedArrayMultiset::new(1);
        s.apply(&m("Insert"), &ints(&[5]), &Value::success()).unwrap();
        s.apply(&m("Delete"), &ints(&[5]), &Value::from(true)).unwrap();
        assert_eq!(s.free_slots(), 1);
        assert!(s
            .apply(&m("Delete"), &ints(&[5]), &Value::from(true))
            .is_err());
    }

    #[test]
    fn observations_and_views_match_the_abstract_multiset() {
        let mut s = AtomizedArrayMultiset::new(4);
        s.apply(&m("Insert"), &ints(&[5]), &Value::success()).unwrap();
        s.apply(&m("Insert"), &ints(&[5]), &Value::success()).unwrap();
        assert!(s.accepts_observation(&m("LookUp"), &ints(&[5]), &Value::from(true)));
        assert!(!s.accepts_observation(&m("LookUp"), &ints(&[6]), &Value::from(true)));
        assert_eq!(s.view().get(&Value::from(5i64)), Some(&Value::from(2u64)));
    }

    #[test]
    fn agrees_with_the_abstract_spec_on_a_trace() {
        // Drive both specifications with the same witness interleaving and
        // compare their views step by step (the §4.4 claim: the atomized
        // implementation is itself a valid specification).
        use crate::spec::MultisetSpec;
        let mut abstract_spec = MultisetSpec::new();
        let mut atomized = AtomizedArrayMultiset::new(8);
        let steps: Vec<(&str, Vec<i64>, Value)> = vec![
            ("Insert", vec![5], Value::success()),
            ("InsertPair", vec![6, 7], Value::success()),
            ("Delete", vec![5], Value::from(true)),
            ("Insert", vec![9], Value::failure()),
            ("Delete", vec![42], Value::from(false)),
        ];
        for (name, args, ret) in steps {
            let args = ints(&args);
            abstract_spec.apply(&m(name), &args, &ret).unwrap();
            atomized.apply(&m(name), &args, &ret).unwrap();
            assert_eq!(abstract_spec.view(), atomized.view(), "after {name}");
        }
    }
}
