//! The Treiber stack with CAS commit points.
//!
//! `Push` and `Pop` are the classic compare-and-swap loops over a
//! tagged head pointer; each commits at its *successful* head CAS (or,
//! for `Pop` of an empty stack / `Push` into an exhausted arena, at the
//! point the terminal condition is re-verified). `Peek` is a pure
//! observer justified by the checker's observer-window search; before
//! logging its return it passes the commit *fence* (an empty
//! acquire/release of the commit lock) so every CAS whose effect it
//! observed has its commit event in the log first — see
//! [`crate`]-level docs on observer fencing.

use std::sync::atomic::Ordering::SeqCst;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use vyrd_core::instrument::MethodSession;
use vyrd_core::log::{EventLog, ThreadLogger};
use vyrd_core::Value;
use vyrd_rt::sync::Mutex;

use crate::arena::{idx, pack, tag, Arena, NIL};
use crate::spec::methods;
use crate::Hook;

/// Which `Pop` the stack runs: the tagged-CAS original or the seeded
/// ABA bug.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StackVariant {
    /// Full `(tag, index)` compare — immune to ABA.
    Correct,
    /// `Pop` compares only the head *index* before installing its stale
    /// `next` pointer: a node popped, recycled, and pushed back between
    /// the read and the CAS satisfies the compare, and the stack is
    /// corrupted — the textbook ABA failure.
    AbaPop,
}

struct Inner {
    arena: Arena,
    head: AtomicU64,
    variant: StackVariant,
    /// §6.1 instrumentation atomicity: held across
    /// `{successful CAS, session.commit()}` only, so the logged commit
    /// order equals the CAS linearization order. Observers acquire and
    /// release it empty-handed (the *fence*) between their final state
    /// read and their return append: any mutator whose effect the
    /// observer saw held this lock from before its CAS until after its
    /// commit append, so the fence cannot be passed until that commit
    /// is in the log and the observer's window is guaranteed to contain
    /// its justification.
    commit_lock: Mutex<()>,
    /// One-shot choreography pause point (see [`crate::Hook`]); fires
    /// inside the ABA window of [`StackVariant::AbaPop`].
    hook: Mutex<Option<Hook>>,
    /// One-shot pause point between `Push`'s successful CAS and its
    /// commit append (commit lock held): the instant the new top is
    /// visible to other threads but its commit event is not yet logged.
    commit_hook: Mutex<Option<Hook>>,
    /// One-shot pause point between `Peek`'s state read and the
    /// observer fence.
    observer_hook: Mutex<Option<Hook>>,
    log: EventLog,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("variant", &self.variant)
            .field("capacity", &self.arena.capacity())
            .finish_non_exhaustive()
    }
}

impl Inner {
    fn fire_hook(&self) {
        let hook = self.hook.lock().take();
        if let Some(f) = hook {
            f();
        }
    }

    fn fire_commit_hook(&self) {
        let hook = self.commit_hook.lock().take();
        if let Some(f) = hook {
            f();
        }
    }

    fn fire_observer_hook(&self) {
        let hook = self.observer_hook.lock().take();
        if let Some(f) = hook {
            f();
        }
    }

    /// The observer fence: an empty acquire/release of the commit lock.
    fn observer_fence(&self) {
        drop(self.commit_lock.lock());
    }
}

/// A fixed-capacity lock-free Treiber stack of `i64` values.
///
/// # Examples
///
/// ```
/// use vyrd_core::checker::Checker;
/// use vyrd_core::log::{EventLog, LogMode};
/// use vyrd_lockfree::{StackSpec, StackVariant, TreiberStack};
///
/// let log = EventLog::in_memory(LogMode::Io);
/// let stack = TreiberStack::new(StackVariant::Correct, 8, log.clone());
/// let h = stack.handle();
/// assert!(h.push(1).is_success());
/// assert!(h.push(2).is_success());
/// assert_eq!(h.peek().as_int(), Some(2));
/// assert_eq!(h.pop().as_int(), Some(2));
/// assert_eq!(h.pop().as_int(), Some(1));
/// assert!(h.pop().is_failure());
///
/// let report = Checker::lin(StackSpec::new()).check_events(log.snapshot());
/// assert!(report.passed());
/// ```
#[derive(Clone, Debug)]
pub struct TreiberStack {
    inner: Arc<Inner>,
}

impl TreiberStack {
    /// Creates a stack with room for `capacity` live elements.
    pub fn new(variant: StackVariant, capacity: usize, log: EventLog) -> TreiberStack {
        TreiberStack {
            inner: Arc::new(Inner {
                arena: Arena::new(capacity),
                head: AtomicU64::new(pack(0, NIL)),
                variant,
                commit_lock: Mutex::new(()),
                hook: Mutex::new(None),
                commit_hook: Mutex::new(None),
                observer_hook: Mutex::new(None),
                log,
            }),
        }
    }

    /// The event log this stack records into.
    pub fn log(&self) -> &EventLog {
        &self.inner.log
    }

    /// Arms the one-shot ABA-window pause point (buggy variant only —
    /// the correct `Pop` never reaches it).
    pub fn arm_pop_hook(&self, hook: Hook) {
        *self.inner.hook.lock() = Some(hook);
    }

    /// Arms the one-shot pause point between `Push`'s successful CAS
    /// and its commit append. The hook runs with the commit lock held —
    /// a choreographed stand-in for a mutator preempted in that gap.
    pub fn arm_push_commit_hook(&self, hook: Hook) {
        *self.inner.commit_hook.lock() = Some(hook);
    }

    /// Arms the one-shot pause point between `Peek`'s final state read
    /// and the observer fence.
    pub fn arm_peek_hook(&self, hook: Hook) {
        *self.inner.observer_hook.lock() = Some(hook);
    }

    /// Creates a per-thread handle with a fresh thread id.
    pub fn handle(&self) -> TreiberStackHandle {
        TreiberStackHandle {
            stack: self.clone(),
            logger: self.inner.log.logger(),
        }
    }
}

/// Per-thread access to a [`TreiberStack`].
#[derive(Clone, Debug)]
pub struct TreiberStackHandle {
    stack: TreiberStack,
    logger: ThreadLogger,
}

impl TreiberStackHandle {
    /// `Push(x)`: pushes one value; fails only when the arena is
    /// exhausted (a spec-visible capacity failure, not an error).
    pub fn push(&self, x: i64) -> Value {
        let mut session = MethodSession::enter(&self.logger, methods::PUSH, &[Value::from(x)]);
        let inner = &self.stack.inner;
        let Some(n) = inner.arena.acquire() else {
            let guard = inner.commit_lock.lock();
            session.commit();
            drop(guard);
            return session.exit(Value::failure());
        };
        inner.arena.value(n).store(x, SeqCst);
        loop {
            let head = inner.head.load(SeqCst);
            inner.arena.set_next_idx(n, idx(head));
            let guard = inner.commit_lock.lock();
            if inner
                .head
                .compare_exchange(head, pack(tag(head).wrapping_add(1), n), SeqCst, SeqCst)
                .is_ok()
            {
                // The new top is published; its commit is not yet logged.
                inner.fire_commit_hook();
                session.commit();
                drop(guard);
                return session.exit(Value::success());
            }
            drop(guard);
        }
    }

    /// `Pop()`: removes and returns the top value, or a failure value
    /// when the stack is empty.
    pub fn pop(&self) -> Value {
        let mut session = MethodSession::enter(&self.logger, methods::POP, &[]);
        let inner = &self.stack.inner;
        loop {
            let head = inner.head.load(SeqCst);
            if idx(head) == NIL {
                // Commit the empty observation only if it still holds
                // under the lock, so the logged order is the real one.
                let guard = inner.commit_lock.lock();
                if inner.head.load(SeqCst) == head {
                    session.commit();
                    drop(guard);
                    return session.exit(Value::failure());
                }
                drop(guard);
                continue;
            }
            // Both reads must precede the CAS: after it, the node can be
            // recycled immediately.
            let next = inner.arena.next(idx(head)).load(SeqCst);
            let val = inner.arena.value(idx(head)).load(SeqCst);
            match inner.variant {
                StackVariant::Correct => {
                    let guard = inner.commit_lock.lock();
                    if inner
                        .head
                        .compare_exchange(
                            head,
                            pack(tag(head).wrapping_add(1), idx(next)),
                            SeqCst,
                            SeqCst,
                        )
                        .is_ok()
                    {
                        session.commit();
                        drop(guard);
                        inner.arena.release(idx(head));
                        return session.exit(Value::from(val));
                    }
                    drop(guard);
                }
                StackVariant::AbaPop => {
                    // The race window: `next`/`val` are already read.
                    inner.fire_hook();
                    let guard = inner.commit_lock.lock();
                    let cur = inner.head.load(SeqCst);
                    // BUG: index-only compare — a recycled node at the
                    // same slot passes, and the stale `next` is
                    // installed.
                    if idx(cur) == idx(head) {
                        inner
                            .head
                            .store(pack(tag(cur).wrapping_add(1), idx(next)), SeqCst);
                        session.commit();
                        drop(guard);
                        inner.arena.release(idx(head));
                        return session.exit(Value::from(val));
                    }
                    drop(guard);
                }
            }
        }
    }

    /// `Peek()`: the current top value, or a failure value when empty.
    /// Observer — no commit, justified by the window search.
    pub fn peek(&self) -> Value {
        let session = MethodSession::enter(&self.logger, methods::PEEK, &[]);
        let inner = &self.stack.inner;
        let ret = loop {
            let head = inner.head.load(SeqCst);
            if idx(head) == NIL {
                break Value::failure();
            }
            let val = inner.arena.value(idx(head)).load(SeqCst);
            // Tag revalidation: the value is the top's iff the head did
            // not move while we read it.
            if inner.head.load(SeqCst) == head {
                break Value::from(val);
            }
        };
        inner.fire_observer_hook();
        // Any CAS whose effect the reads above saw ran under the commit
        // lock and appended its commit before releasing it; passing the
        // fence before the return append keeps that commit inside this
        // observer's window.
        inner.observer_fence();
        session.exit(ret)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vyrd_core::checker::Checker;
    use vyrd_core::log::LogMode;
    use crate::spec::StackSpec;

    fn io_log() -> EventLog {
        EventLog::in_memory(LogMode::Io)
    }

    #[test]
    fn sequential_lifo_semantics() {
        let log = io_log();
        let s = TreiberStack::new(StackVariant::Correct, 4, log.clone());
        let h = s.handle();
        assert!(h.pop().is_failure());
        assert!(h.peek().is_failure());
        assert!(h.push(10).is_success());
        assert!(h.push(20).is_success());
        assert_eq!(h.peek().as_int(), Some(20));
        assert_eq!(h.pop().as_int(), Some(20));
        assert_eq!(h.pop().as_int(), Some(10));
        assert!(h.pop().is_failure());
        let report = Checker::io(StackSpec::new()).check_events(log.snapshot());
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn exhausted_arena_fails_the_push_and_the_spec_accepts_it() {
        let log = io_log();
        let s = TreiberStack::new(StackVariant::Correct, 2, log.clone());
        let h = s.handle();
        assert!(h.push(1).is_success());
        assert!(h.push(2).is_success());
        assert!(h.push(3).is_failure(), "capacity 2 must refuse a third");
        assert_eq!(h.pop().as_int(), Some(2));
        assert!(h.push(4).is_success(), "freed capacity is reusable");
        for checker in [
            Checker::io(StackSpec::new()),
            Checker::lin(StackSpec::new()),
        ] {
            let report = checker.check_events(log.snapshot());
            assert!(report.passed(), "{report}");
        }
    }

    #[test]
    fn concurrent_correct_run_passes_io_and_lin() {
        let log = io_log();
        let s = TreiberStack::new(StackVariant::Correct, 64, log.clone());
        let mut threads = Vec::new();
        for t in 0..4i64 {
            let h = s.handle();
            threads.push(std::thread::spawn(move || {
                for i in 0..60 {
                    match i % 3 {
                        0 => {
                            h.push(t * 100 + i);
                        }
                        1 => {
                            h.pop();
                        }
                        _ => {
                            h.peek();
                        }
                    }
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        let io = Checker::io(StackSpec::new()).check_events(log.snapshot());
        assert!(io.passed(), "io: {io}");
        let lin = Checker::lin(StackSpec::new()).check_events(log.snapshot());
        assert!(lin.passed(), "lin: {lin}");
        assert!(lin.stats.lin_windows_searched > 0, "peeks open windows");
    }

    #[test]
    fn observer_fence_keeps_the_justifying_commit_inside_the_window() {
        // Regression for the flaky `lockfree_correct_passes_io_and_lin`
        // failure: a mutator preempted between its successful CAS and
        // its commit append leaves visible-but-unlogged state, and an
        // unfenced observer logs its return *before* the justifying
        // commit — the window search then (correctly, per the log)
        // reports the observation unjustified. The choreography below
        // pins that exact interleaving.
        use vyrd_core::event::Event;

        let log = io_log();
        let s = TreiberStack::new(StackVariant::Correct, 4, log.clone());

        // Park the pusher after its CAS, before its commit append.
        let parked = Arc::new(std::sync::Barrier::new(2));
        let release = Arc::new(std::sync::Barrier::new(2));
        {
            let parked = Arc::clone(&parked);
            let release = Arc::clone(&release);
            s.arm_push_commit_hook(Box::new(move || {
                parked.wait();
                release.wait();
            }));
        }
        // The observer announces once it has read the published top and
        // is about to pass the fence.
        let observed = Arc::new(std::sync::Barrier::new(2));
        {
            let observed = Arc::clone(&observed);
            s.arm_peek_hook(Box::new(move || {
                observed.wait();
            }));
        }

        let pusher = {
            let h = s.handle();
            std::thread::spawn(move || h.push(5))
        };
        parked.wait();
        let observer = {
            let h = s.handle();
            std::thread::spawn(move || h.peek())
        };
        // The peek has seen the new top while its commit is unlogged;
        // it now blocks on the fence until the pusher's commit lands.
        observed.wait();
        // Give an unfenced observer time to (wrongly) log its return
        // first — a fenced one stays blocked regardless.
        std::thread::sleep(std::time::Duration::from_millis(20));
        release.wait();
        assert!(pusher.join().unwrap().is_success());
        assert_eq!(observer.join().unwrap().as_int(), Some(5));

        // The fence forces the logged order: Commit(Push) precedes
        // Return(Peek), so the window contains its justification.
        let events = log.snapshot();
        let commit = events
            .iter()
            .position(|e| matches!(e, Event::Commit { .. }))
            .expect("push committed");
        let peek_ret = events
            .iter()
            .position(
                |e| matches!(e, Event::Return { method, .. } if method.name() == methods::PEEK),
            )
            .expect("peek returned");
        assert!(commit < peek_ret, "fence must order commit before the observer return");

        let lin = Checker::lin(StackSpec::new()).check_events(events);
        assert!(lin.passed(), "lin: {lin}");
        assert!(lin.stats.lin_windows_searched > 0);
    }

    #[test]
    fn choreographed_aba_pop_is_a_deterministic_violation() {
        let log = io_log();
        let s = TreiberStack::new(StackVariant::AbaPop, 8, log.clone());
        let h = s.handle();
        assert!(h.push(1).is_success());
        assert!(h.push(2).is_success());

        // Park the victim pop inside its ABA window...
        let gate = Arc::new(std::sync::Barrier::new(2));
        let release = Arc::new(std::sync::Barrier::new(2));
        {
            let gate = Arc::clone(&gate);
            let release = Arc::clone(&release);
            s.arm_pop_hook(Box::new(move || {
                gate.wait();
                release.wait();
            }));
        }
        let victim = {
            let h = s.handle();
            std::thread::spawn(move || h.pop())
        };
        gate.wait();
        // ...recycle the node it read: pop both, push two fresh values.
        // The old top slot comes back as the new top with a stale next.
        assert_eq!(h.pop().as_int(), Some(2));
        assert_eq!(h.pop().as_int(), Some(1));
        assert!(h.push(7).is_success());
        assert!(h.push(8).is_success());
        release.wait();
        let stale = victim.join().unwrap();
        // The stale pop "succeeds" and returns the value it read before
        // the window — which is no longer the top of anything.
        assert_eq!(stale.as_int(), Some(2));

        for report in [
            Checker::io(StackSpec::new()).check_events(log.snapshot()),
            Checker::lin(StackSpec::new()).check_events(log.snapshot()),
        ] {
            assert!(!report.passed(), "ABA pop must fail: {report}");
            let v = report.violation.expect("violation");
            assert_eq!(v.category(), "spec-rejected-commit", "{v}");
        }
    }
}
