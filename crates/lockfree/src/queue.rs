//! The Michael–Scott queue with CAS commit points.
//!
//! The standard two-pointer queue over a dummy head node: `Enqueue`
//! commits at its successful `tail.next` link CAS (the point the
//! element becomes reachable), `Dequeue` at its successful head CAS
//! (or at the re-verified empty observation), and `Front` is a pure
//! observer. Lagging tails are helped forward exactly as in the paper
//! algorithm.

use std::sync::atomic::Ordering::SeqCst;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use vyrd_core::instrument::MethodSession;
use vyrd_core::log::{EventLog, ThreadLogger};
use vyrd_core::Value;
use vyrd_rt::sync::Mutex;

use crate::arena::{idx, pack, tag, Arena, NIL};
use crate::spec::methods;
use crate::Hook;

/// Which `Enqueue` the queue runs: the link-then-swing original or the
/// seeded non-atomic tail swing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueVariant {
    /// Link `tail.next` first (the commit), then swing `tail` —
    /// Michael–Scott as published.
    Correct,
    /// `Enqueue` swings `tail` to the new node (and commits) *before*
    /// linking `predecessor.next`: until the link lands the element is
    /// unreachable from `head`, so concurrent `Dequeue`s see an empty
    /// queue the specification says is non-empty.
    EarlyTailSwing,
}

struct Inner {
    arena: Arena,
    head: AtomicU64,
    tail: AtomicU64,
    variant: QueueVariant,
    /// §6.1 instrumentation atomicity — see [`crate::TreiberStack`];
    /// `Front` passes the same observer fence as `Peek`.
    commit_lock: Mutex<()>,
    /// One-shot choreography pause point; fires between the premature
    /// tail swing and the missing link of [`QueueVariant::EarlyTailSwing`].
    hook: Mutex<Option<Hook>>,
    /// One-shot pause point between the correct `Enqueue`'s successful
    /// link CAS and its commit append (commit lock held).
    commit_hook: Mutex<Option<Hook>>,
    /// One-shot pause point between `Front`'s state read and the
    /// observer fence.
    observer_hook: Mutex<Option<Hook>>,
    log: EventLog,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("variant", &self.variant)
            .field("capacity", &self.arena.capacity())
            .finish_non_exhaustive()
    }
}

impl Inner {
    fn fire_hook(&self) {
        let hook = self.hook.lock().take();
        if let Some(f) = hook {
            f();
        }
    }

    fn fire_commit_hook(&self) {
        let hook = self.commit_hook.lock().take();
        if let Some(f) = hook {
            f();
        }
    }

    fn fire_observer_hook(&self) {
        let hook = self.observer_hook.lock().take();
        if let Some(f) = hook {
            f();
        }
    }

    /// The observer fence: an empty acquire/release of the commit lock.
    fn observer_fence(&self) {
        drop(self.commit_lock.lock());
    }
}

/// A fixed-capacity lock-free Michael–Scott FIFO queue of `i64` values.
///
/// # Examples
///
/// ```
/// use vyrd_core::checker::Checker;
/// use vyrd_core::log::{EventLog, LogMode};
/// use vyrd_lockfree::{MsQueue, QueueSpec, QueueVariant};
///
/// let log = EventLog::in_memory(LogMode::Io);
/// let q = MsQueue::new(QueueVariant::Correct, 8, log.clone());
/// let h = q.handle();
/// assert!(h.enqueue(1).is_success());
/// assert!(h.enqueue(2).is_success());
/// assert_eq!(h.front().as_int(), Some(1));
/// assert_eq!(h.dequeue().as_int(), Some(1));
/// assert_eq!(h.dequeue().as_int(), Some(2));
/// assert!(h.dequeue().is_failure());
///
/// let report = Checker::lin(QueueSpec::new()).check_events(log.snapshot());
/// assert!(report.passed());
/// ```
#[derive(Clone, Debug)]
pub struct MsQueue {
    inner: Arc<Inner>,
}

impl MsQueue {
    /// Creates a queue with room for `capacity` live elements (one
    /// extra arena slot is reserved for the dummy node).
    pub fn new(variant: QueueVariant, capacity: usize, log: EventLog) -> MsQueue {
        let arena = Arena::new(capacity + 1);
        let dummy = arena.acquire().unwrap_or(NIL);
        assert_ne!(dummy, NIL, "arena must hold at least the dummy node");
        MsQueue {
            inner: Arc::new(Inner {
                head: AtomicU64::new(pack(0, dummy)),
                tail: AtomicU64::new(pack(0, dummy)),
                arena,
                variant,
                commit_lock: Mutex::new(()),
                hook: Mutex::new(None),
                commit_hook: Mutex::new(None),
                observer_hook: Mutex::new(None),
                log,
            }),
        }
    }

    /// The event log this queue records into.
    pub fn log(&self) -> &EventLog {
        &self.inner.log
    }

    /// Arms the one-shot swing-window pause point (buggy variant only).
    pub fn arm_enqueue_hook(&self, hook: Hook) {
        *self.inner.hook.lock() = Some(hook);
    }

    /// Arms the one-shot pause point between the correct `Enqueue`'s
    /// successful link CAS and its commit append (commit lock held).
    pub fn arm_enqueue_commit_hook(&self, hook: Hook) {
        *self.inner.commit_hook.lock() = Some(hook);
    }

    /// Arms the one-shot pause point between `Front`'s final state read
    /// and the observer fence.
    pub fn arm_front_hook(&self, hook: Hook) {
        *self.inner.observer_hook.lock() = Some(hook);
    }

    /// Creates a per-thread handle with a fresh thread id.
    pub fn handle(&self) -> MsQueueHandle {
        MsQueueHandle {
            queue: self.clone(),
            logger: self.inner.log.logger(),
        }
    }
}

/// Per-thread access to an [`MsQueue`].
#[derive(Clone, Debug)]
pub struct MsQueueHandle {
    queue: MsQueue,
    logger: ThreadLogger,
}

impl MsQueueHandle {
    /// `Enqueue(x)`: appends one value; fails only when the arena is
    /// exhausted.
    pub fn enqueue(&self, x: i64) -> Value {
        let mut session = MethodSession::enter(&self.logger, methods::ENQUEUE, &[Value::from(x)]);
        let inner = &self.queue.inner;
        let Some(n) = inner.arena.acquire() else {
            let guard = inner.commit_lock.lock();
            session.commit();
            drop(guard);
            return session.exit(Value::failure());
        };
        inner.arena.value(n).store(x, SeqCst);
        loop {
            let t = inner.tail.load(SeqCst);
            let tn = inner.arena.next(idx(t)).load(SeqCst);
            if inner.tail.load(SeqCst) != t {
                continue;
            }
            if idx(tn) != NIL {
                // Tail lags: help swing it forward and retry.
                let _ = inner.tail.compare_exchange(
                    t,
                    pack(tag(t).wrapping_add(1), idx(tn)),
                    SeqCst,
                    SeqCst,
                );
                continue;
            }
            match inner.variant {
                QueueVariant::Correct => {
                    let guard = inner.commit_lock.lock();
                    if inner
                        .arena
                        .next(idx(t))
                        .compare_exchange(tn, pack(tag(tn).wrapping_add(1), n), SeqCst, SeqCst)
                        .is_ok()
                    {
                        // The link is the linearization point; the
                        // element is reachable but its commit unlogged.
                        inner.fire_commit_hook();
                        session.commit();
                        drop(guard);
                        let _ = inner.tail.compare_exchange(
                            t,
                            pack(tag(t).wrapping_add(1), n),
                            SeqCst,
                            SeqCst,
                        );
                        return session.exit(Value::success());
                    }
                    drop(guard);
                }
                QueueVariant::EarlyTailSwing => {
                    let guard = inner.commit_lock.lock();
                    // BUG: swing the tail (and commit — the element is
                    // claimed to be in the queue) before the predecessor
                    // link exists.
                    if inner
                        .tail
                        .compare_exchange(t, pack(tag(t).wrapping_add(1), n), SeqCst, SeqCst)
                        .is_ok()
                    {
                        session.commit();
                        drop(guard);
                        // The window: head-side traversal cannot reach
                        // `n` until this store lands.
                        inner.fire_hook();
                        inner
                            .arena
                            .next(idx(t))
                            .store(pack(tag(tn).wrapping_add(1), n), SeqCst);
                        return session.exit(Value::success());
                    }
                    drop(guard);
                }
            }
        }
    }

    /// `Dequeue()`: removes and returns the front value, or a failure
    /// value when the queue is empty.
    pub fn dequeue(&self) -> Value {
        let mut session = MethodSession::enter(&self.logger, methods::DEQUEUE, &[]);
        let inner = &self.queue.inner;
        loop {
            let h = inner.head.load(SeqCst);
            let hn = inner.arena.next(idx(h)).load(SeqCst);
            if inner.head.load(SeqCst) != h {
                continue;
            }
            if idx(hn) == NIL {
                // Commit the empty observation only if it still holds
                // under the lock.
                let guard = inner.commit_lock.lock();
                let still_empty = inner.head.load(SeqCst) == h
                    && idx(inner.arena.next(idx(h)).load(SeqCst)) == NIL;
                if still_empty {
                    session.commit();
                    drop(guard);
                    return session.exit(Value::failure());
                }
                drop(guard);
                continue;
            }
            let t = inner.tail.load(SeqCst);
            if idx(h) == idx(t) {
                // Tail lags behind a linked node: help it forward.
                let _ = inner.tail.compare_exchange(
                    t,
                    pack(tag(t).wrapping_add(1), idx(hn)),
                    SeqCst,
                    SeqCst,
                );
                continue;
            }
            // Read before the CAS: the dummy is recycled right after.
            let val = inner.arena.value(idx(hn)).load(SeqCst);
            let guard = inner.commit_lock.lock();
            if inner
                .head
                .compare_exchange(h, pack(tag(h).wrapping_add(1), idx(hn)), SeqCst, SeqCst)
                .is_ok()
            {
                session.commit();
                drop(guard);
                inner.arena.release(idx(h));
                return session.exit(Value::from(val));
            }
            drop(guard);
        }
    }

    /// `Front()`: the current front value, or a failure value when
    /// empty. Observer — no commit, justified by the window search.
    pub fn front(&self) -> Value {
        let session = MethodSession::enter(&self.logger, methods::FRONT, &[]);
        let inner = &self.queue.inner;
        let ret = loop {
            let h = inner.head.load(SeqCst);
            let hn = inner.arena.next(idx(h)).load(SeqCst);
            if inner.head.load(SeqCst) != h {
                continue;
            }
            if idx(hn) == NIL {
                break Value::failure();
            }
            let val = inner.arena.value(idx(hn)).load(SeqCst);
            if inner.head.load(SeqCst) == h {
                break Value::from(val);
            }
        };
        inner.fire_observer_hook();
        // Observer fence (see `TreiberStack::peek`): every CAS whose
        // effect the reads above saw has its commit appended before the
        // return below, keeping the justification inside the window.
        inner.observer_fence();
        session.exit(ret)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vyrd_core::checker::Checker;
    use vyrd_core::log::LogMode;
    use crate::spec::QueueSpec;

    fn io_log() -> EventLog {
        EventLog::in_memory(LogMode::Io)
    }

    #[test]
    fn sequential_fifo_semantics() {
        let log = io_log();
        let q = MsQueue::new(QueueVariant::Correct, 4, log.clone());
        let h = q.handle();
        assert!(h.dequeue().is_failure());
        assert!(h.front().is_failure());
        assert!(h.enqueue(10).is_success());
        assert!(h.enqueue(20).is_success());
        assert_eq!(h.front().as_int(), Some(10));
        assert_eq!(h.dequeue().as_int(), Some(10));
        assert_eq!(h.dequeue().as_int(), Some(20));
        assert!(h.dequeue().is_failure());
        let report = Checker::io(QueueSpec::new()).check_events(log.snapshot());
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn exhausted_arena_fails_the_enqueue_and_the_spec_accepts_it() {
        let log = io_log();
        let q = MsQueue::new(QueueVariant::Correct, 2, log.clone());
        let h = q.handle();
        assert!(h.enqueue(1).is_success());
        assert!(h.enqueue(2).is_success());
        assert!(h.enqueue(3).is_failure(), "capacity 2 must refuse a third");
        assert_eq!(h.dequeue().as_int(), Some(1));
        assert!(h.enqueue(4).is_success(), "freed capacity is reusable");
        for checker in [
            Checker::io(QueueSpec::new()),
            Checker::lin(QueueSpec::new()),
        ] {
            let report = checker.check_events(log.snapshot());
            assert!(report.passed(), "{report}");
        }
    }

    #[test]
    fn concurrent_correct_run_passes_io_and_lin() {
        let log = io_log();
        let q = MsQueue::new(QueueVariant::Correct, 64, log.clone());
        let mut threads = Vec::new();
        for t in 0..4i64 {
            let h = q.handle();
            threads.push(std::thread::spawn(move || {
                for i in 0..60 {
                    match i % 3 {
                        0 => {
                            h.enqueue(t * 100 + i);
                        }
                        1 => {
                            h.dequeue();
                        }
                        _ => {
                            h.front();
                        }
                    }
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        let io = Checker::io(QueueSpec::new()).check_events(log.snapshot());
        assert!(io.passed(), "io: {io}");
        let lin = Checker::lin(QueueSpec::new()).check_events(log.snapshot());
        assert!(lin.passed(), "lin: {lin}");
        assert!(lin.stats.lin_windows_searched > 0, "fronts open windows");
    }

    #[test]
    fn observer_fence_keeps_the_justifying_commit_inside_the_window() {
        // Queue twin of the stack regression: an enqueuer parked between
        // its link CAS and its commit append publishes a reachable
        // element whose commit is unlogged; an unfenced `Front` would
        // log its return first and the window search would find no
        // justification for the observed value.
        use vyrd_core::event::Event;

        let log = io_log();
        let q = MsQueue::new(QueueVariant::Correct, 4, log.clone());

        let parked = Arc::new(std::sync::Barrier::new(2));
        let release = Arc::new(std::sync::Barrier::new(2));
        {
            let parked = Arc::clone(&parked);
            let release = Arc::clone(&release);
            q.arm_enqueue_commit_hook(Box::new(move || {
                parked.wait();
                release.wait();
            }));
        }
        let observed = Arc::new(std::sync::Barrier::new(2));
        {
            let observed = Arc::clone(&observed);
            q.arm_front_hook(Box::new(move || {
                observed.wait();
            }));
        }

        let enqueuer = {
            let h = q.handle();
            std::thread::spawn(move || h.enqueue(9))
        };
        parked.wait();
        let observer = {
            let h = q.handle();
            std::thread::spawn(move || h.front())
        };
        observed.wait();
        // Give an unfenced observer time to (wrongly) log its return
        // first — a fenced one stays blocked regardless.
        std::thread::sleep(std::time::Duration::from_millis(20));
        release.wait();
        assert!(enqueuer.join().unwrap().is_success());
        assert_eq!(observer.join().unwrap().as_int(), Some(9));

        let events = log.snapshot();
        let commit = events
            .iter()
            .position(|e| matches!(e, Event::Commit { .. }))
            .expect("enqueue committed");
        let front_ret = events
            .iter()
            .position(
                |e| matches!(e, Event::Return { method, .. } if method.name() == methods::FRONT),
            )
            .expect("front returned");
        assert!(commit < front_ret, "fence must order commit before the observer return");

        let lin = Checker::lin(QueueSpec::new()).check_events(events);
        assert!(lin.passed(), "lin: {lin}");
        assert!(lin.stats.lin_windows_searched > 0);
    }

    #[test]
    fn choreographed_tail_swing_is_a_deterministic_violation() {
        let log = io_log();
        let q = MsQueue::new(QueueVariant::EarlyTailSwing, 8, log.clone());
        let h = q.handle();

        // Park the victim enqueue after its premature swing+commit but
        // before the predecessor link...
        let gate = Arc::new(std::sync::Barrier::new(2));
        let release = Arc::new(std::sync::Barrier::new(2));
        {
            let gate = Arc::clone(&gate);
            let release = Arc::clone(&release);
            q.arm_enqueue_hook(Box::new(move || {
                gate.wait();
                release.wait();
            }));
        }
        let victim = {
            let h = q.handle();
            std::thread::spawn(move || h.enqueue(5))
        };
        gate.wait();
        // ...the spec now says [5]; enqueue 6 behind it and observe the
        // unreachable front: the dequeue sees an empty chain from head.
        assert!(h.enqueue(6).is_success());
        let d = h.dequeue();
        assert!(d.is_failure(), "head chain must look empty, got {d}");
        release.wait();
        assert!(victim.join().unwrap().is_success());

        for report in [
            Checker::io(QueueSpec::new()).check_events(log.snapshot()),
            Checker::lin(QueueSpec::new()).check_events(log.snapshot()),
        ] {
            assert!(!report.passed(), "tail swing must fail: {report}");
            let v = report.violation.expect("violation");
            assert_eq!(v.category(), "spec-rejected-commit", "{v}");
        }
    }
}
