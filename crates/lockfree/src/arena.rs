//! Index-based node arena with tagged packed pointers.
//!
//! A "pointer" in this crate is a packed `u64`: the low 32 bits are a
//! node *index* into a preallocated slot array (or [`NIL`]), the high
//! 32 bits are a monotonically bumped *tag*. Every successful CAS on a
//! structural pointer bumps the tag, so a thread holding a stale
//! `(tag, index)` pair can never win a compare-exchange after the node
//! changed hands — the classic tagged-pointer ABA defense, with array
//! indices standing in for addresses so reclamation needs no epochs,
//! no hazard pointers, and no `unsafe`.
//!
//! The free list is itself a tagged Treiber stack threaded through the
//! same `next` fields. [`Arena::release`] additionally bumps the
//! released node's *own* `next` tag, so CASes aimed at the `next` field
//! of a node that has since been recycled (the Michael–Scott link CAS)
//! fail too.
//!
//! All atomics use `SeqCst`: this crate exists to exercise the
//! refinement checker, and sequentially consistent orderings keep the
//! *correct* variants unarguably correct so that every reported
//! violation is the seeded bug, never a memory-ordering artifact.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::SeqCst};

/// The null index: no node.
pub const NIL: u32 = u32::MAX;

/// Packs a `(tag, index)` pair into one atomic word.
#[inline]
pub fn pack(tag: u32, idx: u32) -> u64 {
    (u64::from(tag) << 32) | u64::from(idx)
}

/// The tag half of a packed pointer.
#[inline]
pub fn tag(p: u64) -> u32 {
    (p >> 32) as u32
}

/// The index half of a packed pointer.
#[inline]
pub fn idx(p: u64) -> u32 {
    p as u32
}

/// One arena slot: the payload plus the structural/free-list link.
#[derive(Debug)]
struct Node {
    value: AtomicI64,
    next: AtomicU64,
}

/// A fixed-capacity node arena whose free list is a tagged Treiber
/// stack.
///
/// Exhaustion is not an error: [`Arena::acquire`] returns `None` and
/// the caller's method returns a failure value the specification
/// accepts (like the fixed-capacity array multiset's full `Insert`).
#[derive(Debug)]
pub struct Arena {
    nodes: Box<[Node]>,
    free: AtomicU64,
}

impl Arena {
    /// Creates an arena of `capacity` nodes, all on the free list.
    pub fn new(capacity: usize) -> Arena {
        let capacity = capacity.min(NIL as usize - 1);
        let nodes: Box<[Node]> = (0..capacity)
            .map(|i| Node {
                value: AtomicI64::new(0),
                next: AtomicU64::new(pack(
                    0,
                    if i + 1 < capacity { (i + 1) as u32 } else { NIL },
                )),
            })
            .collect();
        let head = if capacity == 0 { NIL } else { 0 };
        Arena {
            nodes,
            free: AtomicU64::new(pack(0, head)),
        }
    }

    /// Pops a node off the free list, or `None` when exhausted. The
    /// returned node's `next` is reset to `NIL` under a fresh tag.
    pub fn acquire(&self) -> Option<u32> {
        loop {
            let head = self.free.load(SeqCst);
            let i = idx(head);
            if i == NIL {
                return None;
            }
            // The node may be recycled between this read and the CAS;
            // the tagged head CAS then fails and we retry.
            let next = self.next(i).load(SeqCst);
            if self
                .free
                .compare_exchange(head, pack(tag(head).wrapping_add(1), idx(next)), SeqCst, SeqCst)
                .is_ok()
            {
                self.reset_next(i);
                return Some(i);
            }
        }
    }

    /// Pushes a node back on the free list, bumping its `next` tag so
    /// stale CASes aimed at this node's link fail from now on.
    pub fn release(&self, i: u32) {
        loop {
            let head = self.free.load(SeqCst);
            let old = self.next(i).load(SeqCst);
            self.next(i)
                .store(pack(tag(old).wrapping_add(1), idx(head)), SeqCst);
            if self
                .free
                .compare_exchange(head, pack(tag(head).wrapping_add(1), i), SeqCst, SeqCst)
                .is_ok()
            {
                return;
            }
        }
    }

    /// The payload cell of node `i`.
    pub fn value(&self, i: u32) -> &AtomicI64 {
        &self.nodes[i as usize].value
    }

    /// The link cell of node `i`.
    pub fn next(&self, i: u32) -> &AtomicU64 {
        &self.nodes[i as usize].next
    }

    /// Rewrites node `i`'s link to `NIL` under a bumped tag.
    pub fn reset_next(&self, i: u32) {
        let old = self.next(i).load(SeqCst);
        self.next(i)
            .store(pack(tag(old).wrapping_add(1), NIL), SeqCst);
    }

    /// Points node `i`'s link at `target`, keeping the current tag
    /// (publication happens via the structure-head CAS, not here).
    pub fn set_next_idx(&self, i: u32, target: u32) {
        let old = self.next(i).load(SeqCst);
        self.next(i).store(pack(tag(old), target), SeqCst);
    }

    /// Total slots (free or live).
    pub fn capacity(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip() {
        let p = pack(7, 42);
        assert_eq!(tag(p), 7);
        assert_eq!(idx(p), 42);
        assert_eq!(idx(pack(u32::MAX, NIL)), NIL);
    }

    #[test]
    fn acquire_release_cycles_through_capacity() {
        let a = Arena::new(3);
        let mut got = Vec::new();
        while let Some(i) = a.acquire() {
            got.push(i);
        }
        assert_eq!(got.len(), 3);
        assert!(a.acquire().is_none(), "exhausted arena must refuse");
        for i in got {
            a.release(i);
        }
        assert!(a.acquire().is_some(), "released nodes are reusable");
    }

    #[test]
    fn release_bumps_the_next_tag() {
        let a = Arena::new(2);
        let i = a.acquire().unwrap();
        let before = tag(a.next(i).load(std::sync::atomic::Ordering::SeqCst));
        a.release(i);
        let after = tag(a.next(i).load(std::sync::atomic::Ordering::SeqCst));
        assert_ne!(before, after, "stale link CASes must be invalidated");
    }

    #[test]
    fn concurrent_acquire_release_never_duplicates() {
        let a = std::sync::Arc::new(Arena::new(8));
        let mut threads = Vec::new();
        for _ in 0..4 {
            let a = std::sync::Arc::clone(&a);
            threads.push(std::thread::spawn(move || {
                for _ in 0..2000 {
                    if let Some(i) = a.acquire() {
                        a.value(i).store(i64::from(i), SeqCst);
                        assert_eq!(a.value(i).load(SeqCst), i64::from(i));
                        a.release(i);
                    }
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        // Every slot is back on the free list.
        let mut n = 0;
        while a.acquire().is_some() {
            n += 1;
        }
        assert_eq!(n, 8, "free list lost or duplicated slots");
    }
}
