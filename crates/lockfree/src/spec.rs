//! Sequential stack and queue specifications.
//!
//! Method-atomic reference semantics for the lock-free structures:
//! [`StackSpec`] is a LIFO list, [`QueueSpec`] a FIFO list. Both treat
//! a failure return from a mutator as the capacity-exhausted no-op
//! (the arena is fixed-size, like the paper's array multiset), both
//! checkpoint via `save_state`/`restore_state`, and both implement the
//! **observation digest** fast path: their only observers (`Peek` /
//! `Front`) depend on a single element of the state, so a
//! linearization-window candidate can be judged from one retained
//! [`Value`] instead of a full specification clone — the fixed-ADT
//! reduction of Bouajjani et al. applied to window search.

use std::collections::VecDeque;

use vyrd_core::spec::{MethodKind, Spec, SpecEffect, SpecError};
use vyrd_core::view::View;
use vyrd_core::{MethodId, Value};

/// Method names of the lock-free structures.
pub mod methods {
    /// Stack push (mutator): `Push(x) -> success | failure`.
    pub const PUSH: &str = "Push";
    /// Stack pop (mutator): `Pop() -> x | failure` (failure = empty).
    pub const POP: &str = "Pop";
    /// Stack top observer: `Peek() -> x | failure` (failure = empty).
    pub const PEEK: &str = "Peek";
    /// Queue append (mutator): `Enqueue(x) -> success | failure`.
    pub const ENQUEUE: &str = "Enqueue";
    /// Queue remove (mutator): `Dequeue() -> x | failure` (failure = empty).
    pub const DEQUEUE: &str = "Dequeue";
    /// Queue front observer: `Front() -> x | failure` (failure = empty).
    pub const FRONT: &str = "Front";
}

fn int_arg(args: &[Value]) -> Result<i64, SpecError> {
    args.first()
        .and_then(Value::as_int)
        .ok_or_else(|| SpecError::new("expected one integer argument"))
}

/// Serializes a list of ints; shared by both specs' `save_state`.
fn ints_value<'a>(items: impl Iterator<Item = &'a i64>) -> Option<Value> {
    Some(Value::List(items.map(|&x| Value::from(x)).collect()))
}

/// Parses what [`ints_value`] produced.
fn value_ints(state: &Value) -> Result<Vec<i64>, SpecError> {
    let Value::List(items) = state else {
        return Err(SpecError::new("stack/queue state must be a list"));
    };
    items
        .iter()
        .map(|v| v.as_int().ok_or_else(|| SpecError::new("non-int element")))
        .collect()
}

/// The digest an element-or-empty observer needs: the element, or
/// `Unit` for "empty".
fn element_digest(element: Option<i64>) -> Value {
    element.map(Value::from).unwrap_or(Value::Unit)
}

/// Does `ret` match an element-or-empty digest?
fn digest_accepts(digest: &Value, ret: &Value) -> bool {
    match digest {
        Value::Unit => ret.is_failure(),
        element => ret == element,
    }
}

/// Positions-to-values view of a sequence (front/bottom at key 0).
fn sequence_view<'a>(items: impl Iterator<Item = &'a i64>) -> View {
    items
        .enumerate()
        .map(|(i, &x)| (Value::from(i as i64), Value::from(x)))
        .collect()
}

/// The atomic LIFO stack specification.
///
/// * `Push(x) -> success` pushes `x`; `-> failure` is the capacity
///   no-op.
/// * `Pop() -> x` requires `x` to be the top and pops it; `-> failure`
///   requires the stack to be empty.
/// * `Peek() -> x | failure` is an observer accepted iff `x` is the
///   top (or the stack is empty).
#[derive(Clone, Debug, Default)]
pub struct StackSpec {
    /// Bottom first; the top is the last element.
    items: Vec<i64>,
}

impl StackSpec {
    /// Creates an empty stack spec.
    pub fn new() -> StackSpec {
        StackSpec::default()
    }

    /// Current number of elements (test introspection).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Is the stack empty?
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl Spec for StackSpec {
    fn kind(&self, method: &MethodId) -> MethodKind {
        if method.name() == methods::PEEK {
            MethodKind::Observer
        } else {
            MethodKind::Mutator
        }
    }

    fn apply(
        &mut self,
        method: &MethodId,
        args: &[Value],
        ret: &Value,
    ) -> Result<SpecEffect, SpecError> {
        match method.name() {
            methods::PUSH => {
                if ret.is_success() {
                    self.items.push(int_arg(args)?);
                    Ok(SpecEffect::touching([self.items.len() as i64 - 1]))
                } else if ret.is_failure() {
                    // Arena exhausted: a visible capacity no-op.
                    Ok(SpecEffect::unchanged())
                } else {
                    Err(SpecError::new(format!("Push returned {ret}")))
                }
            }
            methods::POP => {
                if ret.is_failure() {
                    if self.items.is_empty() {
                        Ok(SpecEffect::unchanged())
                    } else {
                        Err(SpecError::new(format!(
                            "Pop reported empty but the stack holds {} element(s), top {}",
                            self.items.len(),
                            self.items[self.items.len() - 1],
                        )))
                    }
                } else if let Some(x) = ret.as_int() {
                    match self.items.last() {
                        Some(&top) if top == x => {
                            self.items.pop();
                            Ok(SpecEffect::touching([self.items.len() as i64]))
                        }
                        Some(&top) => Err(SpecError::new(format!(
                            "Pop returned {x} but the top is {top}"
                        ))),
                        None => Err(SpecError::new(format!(
                            "Pop returned {x} from an empty stack"
                        ))),
                    }
                } else {
                    Err(SpecError::new(format!("Pop returned {ret}")))
                }
            }
            other => Err(SpecError::new(format!("unknown stack mutator {other}"))),
        }
    }

    fn accepts_observation(&self, method: &MethodId, _args: &[Value], ret: &Value) -> bool {
        method.name() == methods::PEEK
            && digest_accepts(&element_digest(self.items.last().copied()), ret)
    }

    fn view(&self) -> View {
        sequence_view(self.items.iter())
    }

    fn save_state(&self) -> Option<Value> {
        ints_value(self.items.iter())
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), SpecError> {
        self.items = value_ints(state)?;
        Ok(())
    }

    fn observation_digest(&self) -> Option<Value> {
        Some(element_digest(self.items.last().copied()))
    }

    fn accepts_observation_digest(
        &self,
        method: &MethodId,
        _args: &[Value],
        ret: &Value,
        digest: &Value,
    ) -> bool {
        method.name() == methods::PEEK && digest_accepts(digest, ret)
    }
}

/// The atomic FIFO queue specification.
///
/// * `Enqueue(x) -> success` appends `x`; `-> failure` is the capacity
///   no-op.
/// * `Dequeue() -> x` requires `x` to be the front and removes it;
///   `-> failure` requires the queue to be empty.
/// * `Front() -> x | failure` is an observer accepted iff `x` is the
///   front (or the queue is empty).
#[derive(Clone, Debug, Default)]
pub struct QueueSpec {
    /// Front first.
    items: VecDeque<i64>,
}

impl QueueSpec {
    /// Creates an empty queue spec.
    pub fn new() -> QueueSpec {
        QueueSpec::default()
    }

    /// Current number of elements (test introspection).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl Spec for QueueSpec {
    fn kind(&self, method: &MethodId) -> MethodKind {
        if method.name() == methods::FRONT {
            MethodKind::Observer
        } else {
            MethodKind::Mutator
        }
    }

    fn apply(
        &mut self,
        method: &MethodId,
        args: &[Value],
        ret: &Value,
    ) -> Result<SpecEffect, SpecError> {
        match method.name() {
            methods::ENQUEUE => {
                if ret.is_success() {
                    self.items.push_back(int_arg(args)?);
                    Ok(SpecEffect::touching([self.items.len() as i64 - 1]))
                } else if ret.is_failure() {
                    Ok(SpecEffect::unchanged())
                } else {
                    Err(SpecError::new(format!("Enqueue returned {ret}")))
                }
            }
            methods::DEQUEUE => {
                if ret.is_failure() {
                    if self.items.is_empty() {
                        Ok(SpecEffect::unchanged())
                    } else {
                        Err(SpecError::new(format!(
                            "Dequeue reported empty but the queue holds {} element(s), front {}",
                            self.items.len(),
                            self.items[0],
                        )))
                    }
                } else if let Some(x) = ret.as_int() {
                    match self.items.front() {
                        Some(&front) if front == x => {
                            self.items.pop_front();
                            Ok(SpecEffect::touching([0]))
                        }
                        Some(&front) => Err(SpecError::new(format!(
                            "Dequeue returned {x} but the front is {front}"
                        ))),
                        None => Err(SpecError::new(format!(
                            "Dequeue returned {x} from an empty queue"
                        ))),
                    }
                } else {
                    Err(SpecError::new(format!("Dequeue returned {ret}")))
                }
            }
            other => Err(SpecError::new(format!("unknown queue mutator {other}"))),
        }
    }

    fn accepts_observation(&self, method: &MethodId, _args: &[Value], ret: &Value) -> bool {
        method.name() == methods::FRONT
            && digest_accepts(&element_digest(self.items.front().copied()), ret)
    }

    fn view(&self) -> View {
        sequence_view(self.items.iter())
    }

    fn save_state(&self) -> Option<Value> {
        ints_value(self.items.iter())
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), SpecError> {
        self.items = value_ints(state)?.into();
        Ok(())
    }

    fn observation_digest(&self) -> Option<Value> {
        Some(element_digest(self.items.front().copied()))
    }

    fn accepts_observation_digest(
        &self,
        method: &MethodId,
        _args: &[Value],
        ret: &Value,
        digest: &Value,
    ) -> bool {
        method.name() == methods::FRONT && digest_accepts(digest, ret)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(name: &str) -> MethodId {
        MethodId::from(name)
    }

    #[test]
    fn stack_transitions_and_observations() {
        let mut s = StackSpec::new();
        assert!(s.is_empty());
        assert!(s.apply(&m("Push"), &[1i64.into()], &Value::success()).is_ok());
        assert!(s.apply(&m("Push"), &[2i64.into()], &Value::success()).is_ok());
        assert_eq!(s.len(), 2);
        // Capacity no-op.
        assert!(s.apply(&m("Push"), &[3i64.into()], &Value::failure()).is_ok());
        assert_eq!(s.len(), 2);
        assert!(s.accepts_observation(&m("Peek"), &[], &Value::from(2i64)));
        assert!(!s.accepts_observation(&m("Peek"), &[], &Value::from(1i64)));
        assert!(!s.accepts_observation(&m("Peek"), &[], &Value::failure()));
        // LIFO order enforced.
        assert!(s.apply(&m("Pop"), &[], &Value::from(1i64)).is_err());
        assert!(s.apply(&m("Pop"), &[], &Value::from(2i64)).is_ok());
        assert!(s.apply(&m("Pop"), &[], &Value::failure()).is_err());
        assert!(s.apply(&m("Pop"), &[], &Value::from(1i64)).is_ok());
        assert!(s.apply(&m("Pop"), &[], &Value::failure()).is_ok());
        assert!(s.accepts_observation(&m("Peek"), &[], &Value::failure()));
    }

    #[test]
    fn queue_transitions_and_observations() {
        let mut q = QueueSpec::new();
        assert!(q.apply(&m("Enqueue"), &[1i64.into()], &Value::success()).is_ok());
        assert!(q.apply(&m("Enqueue"), &[2i64.into()], &Value::success()).is_ok());
        assert!(q.apply(&m("Enqueue"), &[9i64.into()], &Value::failure()).is_ok());
        assert_eq!(q.len(), 2);
        assert!(q.accepts_observation(&m("Front"), &[], &Value::from(1i64)));
        assert!(!q.accepts_observation(&m("Front"), &[], &Value::from(2i64)));
        // FIFO order enforced.
        assert!(q.apply(&m("Dequeue"), &[], &Value::from(2i64)).is_err());
        assert!(q.apply(&m("Dequeue"), &[], &Value::failure()).is_err());
        assert!(q.apply(&m("Dequeue"), &[], &Value::from(1i64)).is_ok());
        assert!(q.apply(&m("Dequeue"), &[], &Value::from(2i64)).is_ok());
        assert!(q.apply(&m("Dequeue"), &[], &Value::failure()).is_ok());
        assert!(q.accepts_observation(&m("Front"), &[], &Value::failure()));
    }

    #[test]
    fn digests_agree_with_full_observations() {
        let mut s = StackSpec::new();
        let mut q = QueueSpec::new();
        s.apply(&m("Push"), &[7i64.into()], &Value::success()).unwrap();
        q.apply(&m("Enqueue"), &[7i64.into()], &Value::success()).unwrap();
        for ret in [Value::from(7i64), Value::from(8i64), Value::failure()] {
            let d = s.observation_digest().unwrap();
            assert_eq!(
                s.accepts_observation(&m("Peek"), &[], &ret),
                s.accepts_observation_digest(&m("Peek"), &[], &ret, &d),
                "stack digest disagrees on {ret}"
            );
            let d = q.observation_digest().unwrap();
            assert_eq!(
                q.accepts_observation(&m("Front"), &[], &ret),
                q.accepts_observation_digest(&m("Front"), &[], &ret, &d),
                "queue digest disagrees on {ret}"
            );
        }
    }

    #[test]
    fn save_restore_round_trips() {
        let mut s = StackSpec::new();
        for x in [3, 1, 4, 1, 5] {
            s.apply(&m("Push"), &[x.into()], &Value::success()).unwrap();
        }
        let saved = s.save_state().unwrap();
        let mut restored = StackSpec::new();
        restored.restore_state(&saved).unwrap();
        assert_eq!(restored.save_state(), s.save_state());
        assert!(restored.accepts_observation(&m("Peek"), &[], &Value::from(5i64)));

        let mut q = QueueSpec::new();
        for x in [3, 1, 4] {
            q.apply(&m("Enqueue"), &[x.into()], &Value::success()).unwrap();
        }
        let saved = q.save_state().unwrap();
        let mut restored = QueueSpec::new();
        restored.restore_state(&saved).unwrap();
        assert_eq!(restored.save_state(), q.save_state());
        assert!(restored.accepts_observation(&m("Front"), &[], &Value::from(3i64)));
        assert!(restored.restore_state(&Value::from(3i64)).is_err());
    }
}
