//! # vyrd-lockfree — atomics-based scenario family
//!
//! Every structure the original benchmarks verify is a lock-based
//! monitor: its commit point sits inside a critical section, so the
//! commit order is trivially the order the lock was handed around. This
//! crate adds the other half of the story — **lock-free** structures
//! whose commit points are *successful CAS instructions*:
//!
//! * [`TreiberStack`] — the classic Treiber stack: `Push`/`Pop` commit
//!   at their successful head CAS, `Peek` is a pure observer.
//! * [`MsQueue`] — the Michael–Scott two-pointer queue: `Enqueue`
//!   commits at the successful `tail.next` link CAS, `Dequeue` at the
//!   successful head CAS, `Front` is a pure observer.
//!
//! Both are built over an **index-based arena with tagged pointers**
//! ([`arena::Arena`]): nodes are slots in a preallocated array, a
//! "pointer" is a packed `AtomicU64` of `(tag << 32) | index`, and the
//! free list is itself a tagged Treiber stack. Reclamation is a tag
//! bump + free-list push, so there is no epoch scheme and no `unsafe`
//! anywhere in the crate — a stale thread that still holds an old
//! `(tag, index)` pair simply fails its CAS.
//!
//! Each structure carries a **seeded bug** that reproduces a canonical
//! lock-free defect as a real, checkable refinement violation:
//!
//! * [`StackVariant::AbaPop`] — `Pop` compares only the head *index*,
//!   not the tag: the textbook ABA error. A node popped, recycled, and
//!   pushed again satisfies the stale compare, and the stale `next`
//!   pointer is installed — the stack loses elements and `Pop` returns
//!   values that are no longer on top.
//! * [`QueueVariant::EarlyTailSwing`] — `Enqueue` swings `tail` to the
//!   new node (and commits) *before* linking `predecessor.next`: until
//!   the link lands, the element is unreachable from `head`, so a
//!   concurrent `Dequeue` reports an empty queue the specification says
//!   is non-empty.
//!
//! ## Instrumentation atomicity (§6.1)
//!
//! VYRD requires each logged commit to be recorded atomically with the
//! action it names, so the commit *log* order equals the actual
//! linearization order of the successful CASes. A bare CAS has no
//! surrounding lock to piggyback on, so each structure carries a small
//! `commit_lock` held across `{CAS attempt, session.commit()}` only.
//! The algorithms are unchanged — every mutation still happens by CAS,
//! failed CASes still retry — the lock only serializes *logging*
//! against *publication*, exactly the instrumentation obligation the
//! paper states for its benchmarks.
//!
//! Observers (`Peek`/`Front`) never mutate and never commit, but they
//! carry their own obligation: the justifying commit must land in the
//! log before the observer's return action, or the checker's window
//! `[call, return]` will not contain it. A mutator preempted between
//! its successful CAS and its commit append (it still holds the commit
//! lock) leaves visible-but-unlogged state, so each observer passes an
//! **observer fence** — an empty acquire/release of the commit lock —
//! between its final state read and its return append. Lock acquisition
//! order guarantees every critical section whose CAS the observer saw
//! has completed, commit append included.
//!
//! Specifications live in [`spec`]: [`StackSpec`] (LIFO) and
//! [`QueueSpec`] (FIFO), both checkpointable and both exposing the
//! O(1) *observation digest* fast path used by the linearizability
//! checking mode (`Checker::lin`): for a fixed ADT the only state a
//! `Peek`/`Front` observation depends on is the top/front element, so a
//! window candidate can be judged from one retained `Value` instead of
//! a full specification clone.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod arena;
mod queue;
mod spec;
mod stack;

pub use queue::{MsQueue, MsQueueHandle, QueueVariant};
pub use spec::{methods, QueueSpec, StackSpec};
pub use stack::{StackVariant, TreiberStack, TreiberStackHandle};

/// A one-shot pause point a test choreography installs on a structure.
///
/// The buggy variants expose a *hook* that fires exactly once, at the
/// instant the seeded bug's race window is open (between the stale read
/// and the stale CAS for [`StackVariant::AbaPop`]; between the tail
/// swing and the missing link for [`QueueVariant::EarlyTailSwing`]).
/// A choreography arms the hook with a closure that parks the victim
/// thread on a barrier, performs the interfering operations from
/// another thread, and releases it — turning a probabilistic race into
/// a deterministic, replayable violation.
pub type Hook = Box<dyn FnOnce() + Send>;
