//! Time-to-detection measurement (Table 1).
//!
//! For a buggy scenario, repeatedly run the §7.1 workload, check each
//! recorded trace with *both* I/O and view refinement, and count how many
//! method executions completed before each technique first reported a
//! violation. The paper reports the average over many repetitions plus
//! the ratio of view-mode to I/O-mode checking CPU time on the same
//! traces.

use std::time::Duration;

use crate::measure::{timed, Aggregate};
use crate::scenario::{CheckKind, Scenario, Variant};
use crate::workload::WorkloadConfig;

/// Outcome of a Table 1 measurement for one (scenario, thread-count)
/// cell.
#[derive(Clone, Debug)]
pub struct DetectionMeasurement {
    /// Average completed method executions before I/O refinement
    /// detected the bug (`None` when it never did within the budget).
    pub io_methods: Option<f64>,
    /// Same for view refinement.
    pub view_methods: Option<f64>,
    /// Total CPU time spent checking in I/O mode across all traces.
    pub io_check_time: Duration,
    /// Total CPU time spent checking in view mode across the same traces.
    pub view_check_time: Duration,
    /// Number of detection experiments that contributed (repetitions in
    /// which *view* detected; I/O may have needed more runs).
    pub samples: u64,
}

impl DetectionMeasurement {
    /// View-mode over I/O-mode checking time on the same traces (the
    /// last column of Table 1).
    pub fn cpu_ratio(&self) -> Option<f64> {
        let io = self.io_check_time.as_secs_f64();
        (io > f64::EPSILON).then(|| self.view_check_time.as_secs_f64() / io)
    }
}

/// Runs up to `repetitions` detection experiments. Each experiment keeps
/// generating fresh buggy traces (new seeds) until both checkers have
/// detected the bug or `max_runs_per_experiment` traces were tried;
/// methods-to-detection accumulate across the traces of one experiment,
/// exactly as "number of methods executed before the first error was
/// detected".
pub fn measure_detection(
    scenario: &dyn Scenario,
    cfg: &WorkloadConfig,
    repetitions: u32,
    max_runs_per_experiment: u32,
) -> DetectionMeasurement {
    let mut io_methods = Aggregate::new();
    let mut view_methods = Aggregate::new();
    let mut io_time = Duration::ZERO;
    let mut view_time = Duration::ZERO;
    let mut seed = cfg.seed;

    for _ in 0..repetitions {
        let mut io_total: u64 = 0;
        let mut view_total: u64 = 0;
        let mut io_found = false;
        let mut view_found = false;
        for _ in 0..max_runs_per_experiment {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let run_cfg = cfg.with_seed(seed);
            // Log at view granularity so the *same trace* feeds both
            // checkers, as the ratio column requires.
            let artifacts = crate::scenario::record_run(
                scenario,
                &run_cfg,
                vyrd_core::log::LogMode::View,
                Variant::Buggy,
            );
            let io_report = scenario.check(CheckKind::Io, artifacts.events.clone());
            let view_report = scenario.check(CheckKind::View, artifacts.events.clone());
            // The paper's ratio column compares the CPU cost of the two
            // modes "on the same trace"; time full-trace checking so an
            // early detection does not masquerade as cheap checking.
            let (_, io_d) = timed(|| {
                scenario.check_full(CheckKind::Io, artifacts.events.clone())
            });
            let (_, view_d) = timed(|| {
                scenario.check_full(CheckKind::View, artifacts.events.clone())
            });
            io_time += io_d;
            view_time += view_d;
            if !io_found {
                io_total += io_report.stats.methods_completed;
                io_found = !io_report.passed();
            }
            if !view_found {
                view_total += view_report.stats.methods_completed;
                view_found = !view_report.passed();
            }
            if io_found && view_found {
                break;
            }
        }
        if io_found {
            io_methods.add(io_total as f64);
        }
        if view_found {
            view_methods.add(view_total as f64);
        }
    }

    DetectionMeasurement {
        io_methods: (io_methods.count() > 0).then(|| io_methods.mean()),
        view_methods: (view_methods.count() > 0).then(|| view_methods.mean()),
        io_check_time: io_time,
        view_check_time: view_time,
        samples: view_methods.count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::MultisetVectorScenario;

    #[test]
    fn detection_measurement_reports_ratio() {
        let m = DetectionMeasurement {
            io_methods: Some(100.0),
            view_methods: Some(10.0),
            io_check_time: Duration::from_millis(100),
            view_check_time: Duration::from_millis(150),
            samples: 5,
        };
        assert!((m.cpu_ratio().unwrap() - 1.5).abs() < 1e-9);
        let empty = DetectionMeasurement {
            io_methods: None,
            view_methods: None,
            io_check_time: Duration::ZERO,
            view_check_time: Duration::ZERO,
            samples: 0,
        };
        assert!(empty.cpu_ratio().is_none());
    }

    #[test]
    fn buggy_multiset_vector_is_eventually_detected() {
        let cfg = WorkloadConfig {
            threads: 4,
            calls_per_thread: 40,
            key_pool: 6,
            shrink_pool: true,
            internal_task: false,
            seed: 7,
            pace: None,
        };
        let m = measure_detection(&MultisetVectorScenario, &cfg, 2, 60);
        assert!(
            m.view_methods.is_some(),
            "view refinement never detected the FindSlot bug"
        );
    }
}
