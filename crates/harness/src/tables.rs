//! Plain-text table rendering for the experiment binaries.

use std::fmt::Write as _;

/// A simple fixed-width text table.
#[derive(Clone, Debug)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> TextTable
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extras are dropped.
    pub fn row<I, S>(&mut self, cells: I) -> &mut TextTable
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.truncate(self.headers.len());
        while row.len() < self.headers.len() {
            row.push(String::new());
        }
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "| {:width$} ", cell, width = widths[i]);
            }
            out.push_str("|\n");
        };
        write_row(&mut out, &self.headers);
        for (i, w) in widths.iter().enumerate() {
            let _ = write!(out, "|{:-<width$}", "", width = w + 2);
            if i + 1 == widths.len() {
                out.push_str("|\n");
            }
        }
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a duration in seconds with 3 decimal places.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Formats a ratio with 2 decimal places, or `-` when undefined.
pub fn ratio(numer: f64, denom: f64) -> String {
    if denom <= f64::EPSILON {
        "-".to_owned()
    } else {
        format!("{:.2}", numer / denom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["name", "n"]);
        t.row(["alpha", "1"]).row(["b", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with("|--"));
        // All lines same width.
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn rows_are_padded_and_truncated() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only"]);
        t.row(["x", "y", "z"]);
        let s = t.render();
        assert!(s.contains("only"));
        assert!(!s.contains('z'));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.500");
        assert_eq!(ratio(3.0, 2.0), "1.50");
        assert_eq!(ratio(3.0, 0.0), "-");
    }
}
