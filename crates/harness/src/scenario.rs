//! Benchmark scenarios: one per row of the paper's Tables 1–3.
//!
//! A [`Scenario`] couples an instrumented data structure with the §7.1
//! workload driver, its specification, and its replayer. The harness can
//! then run it with any logging mode / sink, check the resulting log
//! offline (I/O or view), or verify it online on a separate thread.

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use vyrd_rt::channel::Receiver;
use vyrd_core::log::{EventLog, LogMode, LogStats};
use vyrd_core::pool::{ObjectChecker, PoolReport, SupervisorConfig, VerifierPool};
use vyrd_core::segment::{
    ContinuousOptions, ContinuousVerifier, SegmentConfig, SegmentWriterSummary, SteppingFactory,
};
use vyrd_core::shard::ShardConfig;
use vyrd_core::violation::{Report, Violation};
use vyrd_core::witness::{
    BasicExplainer, Counterexample, DdminMinimizer, Explainer, Minimizer, WitnessError,
    WitnessPipeline,
};
use vyrd_core::{AdaptiveConfig, Event, ObjectId};

use crate::measure::timed;
use crate::workload::WorkloadConfig;

/// Builds one checker per object for sharded verification — what a
/// scenario hands to a [`VerifierPool`].
pub type ShardFactory = Arc<dyn Fn(ObjectId) -> Box<dyn ObjectChecker> + Send + Sync>;

/// Which bug variant of a scenario to instantiate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// The correct implementation.
    Correct,
    /// The implementation with the scenario's known bug enabled.
    Buggy,
}

/// Which refinement check to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckKind {
    /// I/O refinement (§4).
    Io,
    /// View refinement (§5).
    View,
    /// Linearizability checking: commit-order mutator replay as in
    /// [`CheckKind::Io`], with every observer window *searched* for a
    /// commit-order-consistent sequential witness
    /// (`vyrd_core::checker::Checker::lin`).
    Lin,
}

/// The checking modes, by their other common name.
pub type CheckMode = CheckKind;

impl CheckKind {
    /// The logging mode this check requires. Lin checking consumes the
    /// same call/commit/return stream as I/O refinement — no
    /// shared-variable writes.
    pub fn log_mode(self) -> LogMode {
        match self {
            CheckKind::Io | CheckKind::Lin => LogMode::Io,
            CheckKind::View => LogMode::View,
        }
    }
}

/// The fail-fast report for a scenario asked to check in a mode it does
/// not support: a [`Verdict::Fail`](vyrd_core::violation::Verdict) with
/// an `unsupported-mode` violation, never a vacuous PASS — nothing was
/// verified, and the report must say so.
pub fn unsupported_report(name: &str, kind: CheckKind) -> Report {
    Report {
        violation: Some(Violation::UnsupportedMode {
            detail: format!(
                "scenario {name} does not support {kind:?} checking — \
                 pick a mode it reports via Scenario::supports"
            ),
            log_position: 0,
        }),
        ..Report::default()
    }
}

/// What a workload run produced.
#[derive(Debug)]
pub struct RunArtifacts {
    /// Wall-clock duration of the run (workload threads only).
    pub wall: Duration,
    /// Logging counters.
    pub log_stats: LogStats,
    /// The recorded events (empty unless an in-memory log was used).
    pub events: Vec<Event>,
}

/// One benchmark system with its workload, specification, and replayer.
pub trait Scenario: Send + Sync {
    /// Row label, as in the paper's tables (e.g. `"Multiset-Vector"`).
    fn name(&self) -> &'static str;

    /// The injected/known bug, as described in Table 1.
    fn bug(&self) -> &'static str;

    /// Does this scenario support checking mode `kind`? A scenario
    /// whose `check*` methods are called with an unsupported mode must
    /// return [`unsupported_report`] — a failed verdict naming the
    /// configuration error — rather than a vacuous PASS.
    fn supports(&self, kind: CheckKind) -> bool {
        let _ = kind;
        true
    }

    /// Runs the workload against a fresh instance that records into
    /// `log`.
    fn run(&self, cfg: &WorkloadConfig, log: &EventLog, variant: Variant);

    /// Checks a recorded log offline (stops at the first violation).
    fn check(&self, kind: CheckKind, events: Vec<Event>) -> Report;

    /// Checks a recorded log offline, consuming the whole trace even
    /// after a violation — the cost basis for Table 1's CPU-ratio column.
    fn check_full(&self, kind: CheckKind, events: Vec<Event>) -> Report;

    /// Checks a live event stream (for the online verification thread).
    fn check_stream(&self, kind: CheckKind, receiver: &Receiver<Event>) -> Report;

    /// Runs the workload over `objects` independent instances of the data
    /// structure, each logging under its own [`ObjectId`] (via
    /// [`EventLog::with_object`]). Returns `false` when the scenario has
    /// no multi-object mode (the default).
    fn run_multi(&self, cfg: &WorkloadConfig, log: &EventLog, variant: Variant, objects: u32) -> bool {
        let _ = (cfg, log, variant, objects);
        false
    }

    /// The per-object checker factory for sharded verification, or `None`
    /// when the scenario has no multi-object mode (the default).
    fn shard_factory(&self, kind: CheckKind) -> Option<ShardFactory> {
        let _ = kind;
        None
    }

    /// The per-object *checkpointable* checker factory for the continuous
    /// verification service, or `None` when the scenario's spec/replayer
    /// cannot serialize its state for `kind` (the default). I/O-mode
    /// checkers need only the spec to be checkpointable; view-mode
    /// checkers additionally need the replayer.
    fn stepping_factory(&self, kind: CheckKind) -> Option<SteppingFactory> {
        let _ = kind;
        None
    }

    /// The counterexample minimizer for this scenario family. The
    /// default is plain ddmin over commit-atomic chunks; families whose
    /// violations are about a single key or element (multiset, the
    /// lock-free structures) override with the argument-focused
    /// variant, which prunes unrelated executions in one oracle run
    /// before ddmin proper.
    fn minimizer(&self, kind: CheckKind) -> Box<dyn Minimizer> {
        let _ = kind;
        Box::new(DdminMinimizer::default())
    }

    /// The witness explainer for this scenario family in mode `kind`.
    /// The default renders the basic one-page text; view-refinement
    /// families add the first divergent spec state, the lock-free
    /// family adds observer-window commentary.
    fn explainer(&self, kind: CheckKind) -> Box<dyn Explainer> {
        let _ = kind;
        Box::new(BasicExplainer)
    }
}

/// Builds a [`Counterexample`] for a failing check of `scenario` in
/// mode `kind`: wires the scenario's offline checker in as the ddmin
/// oracle and its family-specific minimizer/explainer into a
/// [`WitnessPipeline`].
///
/// `report` may be a merged/sharded report — the pipeline re-grounds
/// the violation against `events` (the merged log) with one oracle run
/// before minimizing, so per-object positions never leak into the
/// witness.
///
/// # Errors
///
/// Propagates [`WitnessError`]: passing reports, degradation-flagged
/// (unreliable) violations, and category drift on the re-check.
pub fn build_witness(
    scenario: &dyn Scenario,
    kind: CheckKind,
    events: &[Event],
    report: &Report,
) -> Result<Counterexample, WitnessError> {
    let oracle = |evs: &[Event]| scenario.check(kind, evs.to_vec());
    let pipeline = WitnessPipeline {
        minimizer: scenario.minimizer(kind),
        explainer: scenario.explainer(kind),
    };
    let mode = match kind {
        CheckKind::Io => "io",
        CheckKind::View => "view",
        CheckKind::Lin => "lin",
    };
    pipeline.run(scenario.name(), mode, events, report, &oracle)
}

/// Builds a witness for a seeded bug whose streaming run retained no
/// events (the soak pipeline and the segmented continuous service both
/// consume-and-discard): re-runs the workload closed-loop with an
/// in-memory log, walking seeds until a trace fails the `kind` check,
/// then feeds that trace through [`build_witness`].
///
/// The witness certifies the *reconstructed* trace — a clean, fully
/// covered recording of the same seeded bug — never the discarded
/// (possibly degraded) streaming run, which keeps the degrade-never-
/// forge rule intact.
///
/// # Errors
///
/// Returns a human-readable reason: no failing trace within `max_runs`
/// attempts, or a [`WitnessError`] from the pipeline itself.
pub fn reconstruct_witness(
    scenario: &dyn Scenario,
    kind: CheckKind,
    variant: Variant,
    cfg: &WorkloadConfig,
    max_runs: u32,
) -> Result<Counterexample, String> {
    // Paced (open-loop) configs set `calls_per_thread: 0`; the reprise
    // is closed-loop so it terminates on its own and records a bounded
    // trace.
    let mut base = *cfg;
    base.pace = None;
    if base.calls_per_thread == 0 {
        base.calls_per_thread = 150;
    }
    let mut seed = base.seed;
    for _ in 0..max_runs {
        let run = record_run(scenario, &base.with_seed(seed), kind.log_mode(), variant);
        let report = scenario.check(kind, run.events.clone());
        if !report.passed() {
            return build_witness(scenario, kind, &run.events, &report)
                .map_err(|e| format!("witness pipeline: {e}"));
        }
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    }
    Err(format!(
        "no failing {kind:?} trace for {} in {max_runs} {variant:?} runs",
        scenario.name()
    ))
}

/// Runs a scenario's workload with an in-memory log and returns the
/// artifacts.
pub fn record_run(
    scenario: &dyn Scenario,
    cfg: &WorkloadConfig,
    mode: LogMode,
    variant: Variant,
) -> RunArtifacts {
    let log = EventLog::in_memory(mode);
    let ((), wall) = timed(|| scenario.run(cfg, &log, variant));
    RunArtifacts {
        wall,
        log_stats: log.stats(),
        events: log.drain(),
    }
}

/// Runs a scenario's workload with a discarding log (pure program +
/// logging cost, nothing retained) and returns the wall time.
pub fn run_discarding(
    scenario: &dyn Scenario,
    cfg: &WorkloadConfig,
    mode: LogMode,
    variant: Variant,
) -> (Duration, LogStats) {
    let log = EventLog::discarding(mode);
    let ((), wall) = timed(|| scenario.run(cfg, &log, variant));
    (wall, log.stats())
}

/// Runs a scenario's workload while an online verification thread
/// consumes the log concurrently (the "Prog.+logging and VYRD" column of
/// Table 3). Returns the program-side wall time and the verifier's
/// report.
pub fn run_online(
    scenario: &dyn Scenario,
    cfg: &WorkloadConfig,
    kind: CheckKind,
    variant: Variant,
) -> (Duration, Report) {
    let (log, receiver) = EventLog::to_channel(kind.log_mode());
    std::thread::scope(|scope| {
        let verifier = scope.spawn(|| scenario.check_stream(kind, &receiver));
        // Close the log even if the workload panics, so the verifier
        // thread's recv loop terminates and the scope can unwind instead
        // of deadlocking.
        let run_result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                timed(|| scenario.run(cfg, &log, variant))
            }));
        log.close();
        let report = verifier.join().expect("verifier thread");
        match run_result {
            Ok(((), wall)) => (wall, report),
            Err(panic) => std::panic::resume_unwind(panic),
        }
    })
}

/// Runs a scenario's multi-object workload while a [`VerifierPool`]
/// checks each object's log shard concurrently (§8's "logs of different
/// objects checked concurrently and independently"). Returns the
/// program-side wall time and the pool's merged report, or `None` when
/// the scenario has no multi-object mode.
pub fn run_online_sharded(
    scenario: &dyn Scenario,
    cfg: &WorkloadConfig,
    kind: CheckKind,
    variant: Variant,
    objects: u32,
    workers: usize,
) -> Option<(Duration, Report)> {
    let (wall, all) = run_online_sharded_with(
        scenario,
        cfg,
        kind,
        variant,
        objects,
        workers,
        ShardConfig::default(),
        SupervisorConfig::default(),
    )?;
    Some((wall, all.merged))
}

/// Like [`run_online_sharded`] with explicit shard and supervision
/// configuration — the entry point the fault matrix drives. Returns the
/// full [`PoolReport`] (per-object verdicts included) so callers can
/// compare each shard against an offline re-check.
#[allow(clippy::too_many_arguments)]
pub fn run_online_sharded_with(
    scenario: &dyn Scenario,
    cfg: &WorkloadConfig,
    kind: CheckKind,
    variant: Variant,
    objects: u32,
    workers: usize,
    shard_config: ShardConfig,
    supervisor: SupervisorConfig,
) -> Option<(Duration, PoolReport)> {
    let factory = scenario.shard_factory(kind)?;
    let pool = VerifierPool::spawn_supervised(
        kind.log_mode(),
        workers,
        shard_config,
        supervisor,
        move |object| factory(object),
    );
    let run_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        timed(|| scenario.run_multi(cfg, pool.log(), variant, objects))
    }));
    match run_result {
        Ok((supported, wall)) => {
            let all = pool.finish_all();
            supported.then_some((wall, all))
        }
        Err(panic) => {
            // Unblock the workers before unwinding; dropping the pool
            // detaches them and the closed log ends their shards.
            pool.log().close();
            std::panic::resume_unwind(panic)
        }
    }
}

/// What an open-loop soak run produced (see [`run_soak`]).
#[derive(Debug)]
pub struct SoakArtifacts {
    /// Wall-clock duration of the run (workload threads only).
    pub wall: Duration,
    /// The adaptive pool's full report — merged verdict, per-object
    /// verdicts, and the degradation ledger with shed windows, adaptive
    /// decisions, and watchdog events.
    pub report: PoolReport,
    /// The program-side log counters (appended / dropped / bytes), read
    /// after the workload finished and before the pool folded its
    /// ledger — the reconciliation baseline for the soak gates.
    pub log_stats: LogStats,
}

/// Runs a scenario's multi-object workload against an *adaptive*
/// [`VerifierPool`] — the open-loop soak path. The workload offers load
/// on the fixed arrival schedule in `cfg.pace` (or closed-loop when
/// unset); the pool's [`AdaptiveShed`](vyrd_core::AdaptiveShed) ticker
/// adjusts shed budgets/timeouts AIMD-style and escalates stuck shards,
/// so past saturation the run converges to a bounded-lag DEGRADED PASS
/// instead of an unbounded queue. Returns `None` when the scenario has
/// no multi-object mode or no shard factory for `kind`.
#[allow(clippy::too_many_arguments)] // one call site (soak), every knob load-bearing
pub fn run_soak(
    scenario: &dyn Scenario,
    cfg: &WorkloadConfig,
    kind: CheckKind,
    variant: Variant,
    objects: u32,
    workers: usize,
    adaptive: AdaptiveConfig,
    supervisor: SupervisorConfig,
) -> Option<SoakArtifacts> {
    let factory = scenario.shard_factory(kind)?;
    let pool = VerifierPool::spawn_adaptive(
        kind.log_mode(),
        workers,
        adaptive,
        supervisor,
        move |object| factory(object),
    );
    let run_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        timed(|| scenario.run_multi(cfg, pool.log(), variant, objects))
    }));
    match run_result {
        Ok((supported, wall)) => {
            let log_stats = pool.log().stats();
            let report = pool.finish_all();
            supported.then_some(SoakArtifacts {
                wall,
                report,
                log_stats,
            })
        }
        Err(panic) => {
            pool.log().close();
            std::panic::resume_unwind(panic)
        }
    }
}

/// What a continuous (durably segmented) run produced.
#[derive(Debug)]
pub struct ContinuousArtifacts {
    /// Wall-clock duration of the run (workload threads only).
    pub wall: Duration,
    /// The continuous verifier's merged report.
    pub report: Report,
    /// The segment writer's totals (segments sealed, events, bytes).
    pub summary: SegmentWriterSummary,
}

/// Runs a scenario's workload with a durable segmented log while a
/// [`ContinuousVerifier`] polls the segment directory on its own thread —
/// checking sealed segments as they appear, checkpointing its state, and
/// deleting fully-checked segments so neither memory nor disk holds the
/// whole history.
///
/// The directory in `segments` is left with the final checkpoint plus any
/// segments not yet covered by it; reopening it with
/// [`ContinuousVerifier::open`] resumes where this run left off.
///
/// # Errors
///
/// Returns [`io::ErrorKind::Unsupported`] when the scenario has no
/// checkpointable checker for `kind` (see
/// [`Scenario::stepping_factory`]); otherwise propagates segment-
/// directory and checkpoint I/O errors.
pub fn run_continuous(
    scenario: &dyn Scenario,
    cfg: &WorkloadConfig,
    kind: CheckKind,
    variant: Variant,
    segments: SegmentConfig,
    options: ContinuousOptions,
) -> io::Result<ContinuousArtifacts> {
    let factory = scenario.stepping_factory(kind).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::Unsupported,
            format!("{} has no checkpointable {kind:?} checker", scenario.name()),
        )
    })?;
    let dir = segments.dir.clone();
    let (log, handle) = EventLog::to_segments(kind.log_mode(), segments)?;
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let verifier = scope.spawn(|| -> io::Result<Report> {
            let mut verifier =
                ContinuousVerifier::open(&dir, factory, options)?;
            while !stop.load(Ordering::Relaxed) {
                verifier.step()?;
                std::thread::sleep(Duration::from_millis(2));
            }
            // The writer has sealed its tail into the manifest by now;
            // `finalize` picks up the remaining sealed segments.
            verifier.finalize()
        });
        let run_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            timed(|| scenario.run(cfg, &log, variant))
        }));
        // Drain the log into the writer and seal the tail even when the
        // workload panicked, so the verifier thread can terminate.
        log.close();
        let summary = handle.finish();
        stop.store(true, Ordering::Relaxed);
        let report = verifier.join().expect("continuous verifier thread");
        match run_result {
            Ok(((), wall)) => Ok(ContinuousArtifacts {
                wall,
                report: report?,
                summary: summary?,
            }),
            Err(panic) => std::panic::resume_unwind(panic),
        }
    })
}
