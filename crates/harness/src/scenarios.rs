//! The six benchmark systems of Tables 1–3, wired to the §7.1 workload
//! driver.

use vyrd_blinktree::{BLinkReplayer, BLinkSpec, BLinkTree, BLinkVariant};
use vyrd_core::checker::{Checker, CheckerOptions};
use vyrd_core::log::EventLog;
use vyrd_core::violation::Report;
use vyrd_core::Event;
use vyrd_javalib::{
    BufferPool, StringBufferReplayer, StringBufferSpec, StringBufferVariant, SyncVector,
    VectorReplayer, VectorSpec, VectorVariant,
};
use vyrd_lockfree::{
    MsQueue, QueueSpec, QueueVariant, StackSpec, StackVariant, TreiberStack,
};
use vyrd_multiset::{
    BstMultiset, BstReplayer, BstVariant, FindSlotVariant, MultisetSpec, SlotReplayer,
    VectorMultiset,
};
use vyrd_storage::{
    clean_matches_chunk, entry_in_exactly_one_list, BoxCache, CacheReplayer, CacheVariant,
    ChunkManager, StoreSpec,
};

use std::sync::Arc;

use vyrd_core::pool::ObjectChecker;
use vyrd_core::segment::{SteppingChecker, SteppingFactory};
use vyrd_core::spec::Spec;
use vyrd_core::witness::{
    BasicExplainer, DdminMinimizer, Explainer, LinExplainer, Minimizer, ViewExplainer,
};
use vyrd_core::ObjectId;

use crate::scenario::{unsupported_report, CheckKind, Scenario, ShardFactory, Variant};
use crate::workload::{OpBudget, ThreadWorkload, WorkloadConfig};

/// All six table rows, in the paper's order.
pub fn all() -> Vec<Box<dyn Scenario>> {
    vec![
        Box::new(MultisetVectorScenario),
        Box::new(MultisetBstScenario),
        Box::new(JavaVectorScenario),
        Box::new(StringBufferScenario),
        Box::new(BLinkTreeScenario),
        Box::new(CacheScenario),
    ]
}

/// The lock-free scenario family — atomics-based structures whose
/// commit points are successful CAS instructions. Not part of the
/// paper's six table rows; checkable in `Io` and `Lin` modes (they log
/// no shared-variable writes, so `View` refinement is unsupported and
/// refused with a failed verdict).
pub fn lockfree() -> Vec<Box<dyn Scenario>> {
    vec![Box::new(TreiberStackScenario), Box::new(MsQueueScenario)]
}

/// Looks a scenario up by name, across the table rows ([`all`]) and the
/// lock-free family ([`lockfree`]).
pub fn by_name(name: &str) -> Option<Box<dyn Scenario>> {
    all()
        .into_iter()
        .chain(lockfree())
        .find(|s| s.name() == name)
}

/// Spawns `cfg.threads` workload threads plus (optionally) an internal
/// task thread, joining everything before returning.
///
/// Each thread receives an [`OpBudget`] alongside its random stream:
/// closed-loop runs count to `cfg.calls_per_thread`, open-loop runs
/// (`cfg.pace` set) release calls on a fixed arrival schedule until the
/// duration deadline. All budgets share one start instant so the
/// aggregate offered rate is exactly `pace.rate_per_sec`.
fn drive<W, T>(cfg: &WorkloadConfig, per_thread: W, internal_task: Option<T>)
where
    W: Fn(usize, ThreadWorkload, OpBudget) + Send + Sync,
    T: FnMut() + Send,
{
    let stop = std::sync::atomic::AtomicBool::new(false);
    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        let task_handle = internal_task.map(|mut task| {
            let stop = &stop;
            scope.spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    task();
                    // Internal maintenance runs continuously (§7.1) but
                    // must not monopolize the structure lock; a short
                    // pause keeps the workload, not the maintenance,
                    // dominant — as in the paper's systems.
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
            })
        });
        let per_thread = &per_thread;
        let workers: Vec<_> = (0..cfg.threads)
            .map(|i| {
                let wl = ThreadWorkload::new(cfg, i);
                let budget = OpBudget::new(cfg, i, start);
                scope.spawn(move || per_thread(i, wl, budget))
            })
            .collect();
        for w in workers {
            w.join().expect("workload thread");
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(h) = task_handle {
            h.join().expect("internal task thread");
        }
    });
}


/// A continuous-verification factory over spec-only (I/O or Lin mode)
/// checkers of `make`'s specification. Every spec in this module is
/// checkpointable, so every scenario supports continuous I/O and Lin
/// checking; view-mode support additionally needs a checkpointable
/// replayer (the cache and both multiset replayers have one) and is
/// handled per scenario.
fn spec_stepping<S, F>(kind: CheckKind, make: F) -> Option<SteppingFactory>
where
    S: Spec + 'static,
    F: Fn() -> S + Send + Sync + 'static,
{
    match kind {
        CheckKind::Io => {
            Some(Arc::new(move |_object| Box::new(Checker::io(make())) as Box<dyn SteppingChecker>))
        }
        CheckKind::Lin => Some(Arc::new(move |_object| {
            Box::new(Checker::lin(make())) as Box<dyn SteppingChecker>
        })),
        CheckKind::View => None,
    }
}

/// Generates the three `Scenario` checking methods from the scenario's
/// specification / replayer constructors (plus optional invariants).
macro_rules! impl_checks {
    ($spec:expr, $replayer:expr $(, $inv:expr)* $(,)?) => {
        fn check(&self, kind: CheckKind, events: Vec<Event>) -> Report {
            match kind {
                CheckKind::Io => Checker::io($spec).check_events(events),
                CheckKind::Lin => Checker::lin($spec).check_events(events),
                CheckKind::View => Checker::view($spec, $replayer)
                    $(.with_invariant($inv))*
                    .check_events(events),
            }
        }

        fn check_full(&self, kind: CheckKind, events: Vec<Event>) -> Report {
            let options = CheckerOptions {
                stop_at_first_violation: false,
                ..CheckerOptions::default()
            };
            match kind {
                CheckKind::Io => Checker::io($spec)
                    .with_options(options)
                    .check_events(events),
                CheckKind::Lin => Checker::lin($spec)
                    .with_options(options)
                    .check_events(events),
                CheckKind::View => Checker::view($spec, $replayer)
                    $(.with_invariant($inv))*
                    .with_options(options)
                    .check_events(events),
            }
        }

        fn check_stream(
            &self,
            kind: CheckKind,
            receiver: &vyrd_rt::channel::Receiver<Event>,
        ) -> Report {
            match kind {
                CheckKind::Io => Checker::io($spec).check_receiver(receiver),
                CheckKind::Lin => Checker::lin($spec).check_receiver(receiver),
                CheckKind::View => Checker::view($spec, $replayer)
                    $(.with_invariant($inv))*
                    .check_receiver(receiver),
            }
        }
    };
}

// ---------------------------------------------------------------------
// Multiset-Vector — "moving acquire in FindSlot" (Fig. 5)
// ---------------------------------------------------------------------

/// The growable multiset with the Fig. 5 `FindSlot` bug.
#[derive(Debug)]
pub struct MultisetVectorScenario;

impl Scenario for MultisetVectorScenario {
    fn name(&self) -> &'static str {
        "Multiset-Vector"
    }

    fn bug(&self) -> &'static str {
        "Moving acquire in FindSlot"
    }

    fn run(&self, cfg: &WorkloadConfig, log: &EventLog, variant: Variant) {
        let fs = match variant {
            Variant::Correct => FindSlotVariant::Correct,
            Variant::Buggy => FindSlotVariant::Buggy,
        };
        let ms = VectorMultiset::new(fs, log.clone());
        let task = cfg.internal_task.then(|| {
            let h = ms.handle();
            move || h.compress()
        });
        drive(
            cfg,
            |_, mut wl, mut ops| {
                let h = ms.handle();
                while ops.next().is_some() {
                    let op = wl.next_op(&[3, 2, 3, 2]);
                    let x = wl.next_key();
                    match op {
                        0 => {
                            h.insert(x);
                        }
                        1 => {
                            h.insert_pair(x, wl.next_key());
                        }
                        2 => {
                            h.delete(x);
                        }
                        _ => {
                            h.lookup(x);
                        }
                    }
                }
            },
            task,
        );
    }

    impl_checks!(MultisetSpec::new(), SlotReplayer::new());

    /// §8 multi-object mode: `objects` independent multisets, each
    /// logging under its own [`ObjectId`]; every call picks an instance
    /// from the workload stream.
    fn run_multi(&self, cfg: &WorkloadConfig, log: &EventLog, variant: Variant, objects: u32) -> bool {
        let fs = match variant {
            Variant::Correct => FindSlotVariant::Correct,
            Variant::Buggy => FindSlotVariant::Buggy,
        };
        let sets: Vec<VectorMultiset> = (0..objects.max(1))
            .map(|i| VectorMultiset::new(fs, log.with_object(ObjectId(i))))
            .collect();
        let task = cfg.internal_task.then(|| {
            let handles: Vec<_> = sets.iter().map(|s| s.handle()).collect();
            let mut next = 0usize;
            move || {
                handles[next % handles.len()].compress();
                next += 1;
            }
        });
        drive(
            cfg,
            |_, mut wl, mut ops| {
                while ops.next().is_some() {
                    let h = sets[wl.next_int(sets.len() as i64) as usize].handle();
                    let op = wl.next_op(&[3, 2, 3, 2]);
                    let x = wl.next_key();
                    match op {
                        0 => {
                            h.insert(x);
                        }
                        1 => {
                            h.insert_pair(x, wl.next_key());
                        }
                        2 => {
                            h.delete(x);
                        }
                        _ => {
                            h.lookup(x);
                        }
                    }
                }
            },
            task,
        );
        true
    }

    fn shard_factory(&self, kind: CheckKind) -> Option<ShardFactory> {
        Some(Arc::new(move |_object| match kind {
            CheckKind::Io => Box::new(Checker::io(MultisetSpec::new())) as Box<dyn ObjectChecker>,
            CheckKind::Lin => Box::new(Checker::lin(MultisetSpec::new())),
            CheckKind::View => Box::new(Checker::view(MultisetSpec::new(), SlotReplayer::new())),
        }))
    }

    fn stepping_factory(&self, kind: CheckKind) -> Option<SteppingFactory> {
        match kind {
            CheckKind::View => Some(Arc::new(|_object| {
                Box::new(Checker::view(MultisetSpec::new(), SlotReplayer::new()))
                    as Box<dyn SteppingChecker>
            })),
            _ => spec_stepping(kind, MultisetSpec::new),
        }
    }

    fn minimizer(&self, _kind: CheckKind) -> Box<dyn Minimizer> {
        Box::new(DdminMinimizer::focused())
    }

    fn explainer(&self, kind: CheckKind) -> Box<dyn Explainer> {
        match kind {
            CheckKind::View => Box::new(ViewExplainer),
            _ => Box::new(BasicExplainer),
        }
    }
}

// ---------------------------------------------------------------------
// Multiset-BinaryTree — "unlocking parent before insertion"
// ---------------------------------------------------------------------

/// The BST multiset with the lost-insert bug.
#[derive(Debug)]
pub struct MultisetBstScenario;

impl Scenario for MultisetBstScenario {
    fn name(&self) -> &'static str {
        "Multiset-BinaryTree"
    }

    fn bug(&self) -> &'static str {
        "Unlocking parent before insertion"
    }

    fn run(&self, cfg: &WorkloadConfig, log: &EventLog, variant: Variant) {
        let v = match variant {
            Variant::Correct => BstVariant::Correct,
            Variant::Buggy => BstVariant::UnlockParentEarly,
        };
        let ms = BstMultiset::new(v, log.clone());
        let task = cfg.internal_task.then(|| {
            let h = ms.handle();
            move || h.compress()
        });
        drive(
            cfg,
            |_, mut wl, mut ops| {
                let h = ms.handle();
                while ops.next().is_some() {
                    let op = wl.next_op(&[5, 2, 3]);
                    let x = wl.next_key();
                    match op {
                        0 => {
                            h.insert(x);
                        }
                        1 => {
                            h.delete(x);
                        }
                        _ => {
                            h.lookup(x);
                        }
                    }
                }
            },
            task,
        );
    }

    impl_checks!(MultisetSpec::new(), BstReplayer::new());

    /// §8 multi-object mode: `objects` independent BST multisets, each
    /// logging under its own [`ObjectId`]; every call picks an instance
    /// from the workload stream. The compressor services the trees in
    /// rotation.
    fn run_multi(&self, cfg: &WorkloadConfig, log: &EventLog, variant: Variant, objects: u32) -> bool {
        let v = match variant {
            Variant::Correct => BstVariant::Correct,
            Variant::Buggy => BstVariant::UnlockParentEarly,
        };
        let sets: Vec<BstMultiset> = (0..objects.max(1))
            .map(|i| BstMultiset::new(v, log.with_object(ObjectId(i))))
            .collect();
        let task = cfg.internal_task.then(|| {
            let handles: Vec<_> = sets.iter().map(|s| s.handle()).collect();
            let mut next = 0usize;
            move || {
                handles[next % handles.len()].compress();
                next += 1;
            }
        });
        drive(
            cfg,
            |_, mut wl, mut ops| {
                while ops.next().is_some() {
                    let h = sets[wl.next_int(sets.len() as i64) as usize].handle();
                    let op = wl.next_op(&[5, 2, 3]);
                    let x = wl.next_key();
                    match op {
                        0 => {
                            h.insert(x);
                        }
                        1 => {
                            h.delete(x);
                        }
                        _ => {
                            h.lookup(x);
                        }
                    }
                }
            },
            task,
        );
        true
    }

    fn shard_factory(&self, kind: CheckKind) -> Option<ShardFactory> {
        Some(Arc::new(move |_object| match kind {
            CheckKind::Io => Box::new(Checker::io(MultisetSpec::new())) as Box<dyn ObjectChecker>,
            CheckKind::Lin => Box::new(Checker::lin(MultisetSpec::new())),
            CheckKind::View => Box::new(Checker::view(MultisetSpec::new(), BstReplayer::new())),
        }))
    }

    fn stepping_factory(&self, kind: CheckKind) -> Option<SteppingFactory> {
        match kind {
            CheckKind::View => Some(Arc::new(|_object| {
                Box::new(Checker::view(MultisetSpec::new(), BstReplayer::new()))
                    as Box<dyn SteppingChecker>
            })),
            _ => spec_stepping(kind, MultisetSpec::new),
        }
    }

    fn minimizer(&self, _kind: CheckKind) -> Box<dyn Minimizer> {
        Box::new(DdminMinimizer::focused())
    }

    fn explainer(&self, kind: CheckKind) -> Box<dyn Explainer> {
        match kind {
            CheckKind::View => Box::new(ViewExplainer),
            _ => Box::new(BasicExplainer),
        }
    }
}

// ---------------------------------------------------------------------
// java.util.Vector — "taking length non-atomically in lastIndexOf()"
// ---------------------------------------------------------------------

/// The synchronized vector with the observer-side bug.
#[derive(Debug)]
pub struct JavaVectorScenario;

impl Scenario for JavaVectorScenario {
    fn name(&self) -> &'static str {
        "Vector"
    }

    fn bug(&self) -> &'static str {
        "Taking length non-atomically in lastIndexOf()"
    }

    fn run(&self, cfg: &WorkloadConfig, log: &EventLog, variant: Variant) {
        let v = match variant {
            Variant::Correct => VectorVariant::Correct,
            Variant::Buggy => VectorVariant::Buggy,
        };
        let vec = SyncVector::new(v, log.clone());
        // Seed so early removeLast/lastIndexOf have content to race on.
        let seeder = vec.handle();
        for i in 0..8 {
            seeder.add(i);
        }
        drive(
            cfg,
            |_, mut wl, mut ops| {
                let h = vec.handle();
                while ops.next().is_some() {
                    let op = wl.next_op(&[4, 3, 3, 1]);
                    match op {
                        0 => h.add(wl.next_key()),
                        1 => {
                            h.remove_last();
                        }
                        2 => {
                            h.last_index_of(wl.next_key());
                        }
                        _ => {
                            h.size();
                        }
                    }
                }
            },
            None::<fn()>,
        );
    }

    impl_checks!(VectorSpec::new(), VectorReplayer::new());

    /// §8 multi-object mode: `objects` independent vectors, each seeded
    /// and logging under its own [`ObjectId`]; every call picks an
    /// instance from the workload stream.
    fn run_multi(&self, cfg: &WorkloadConfig, log: &EventLog, variant: Variant, objects: u32) -> bool {
        let v = match variant {
            Variant::Correct => VectorVariant::Correct,
            Variant::Buggy => VectorVariant::Buggy,
        };
        let vecs: Vec<SyncVector> = (0..objects.max(1))
            .map(|i| SyncVector::new(v, log.with_object(ObjectId(i))))
            .collect();
        for vec in &vecs {
            let seeder = vec.handle();
            for i in 0..8 {
                seeder.add(i);
            }
        }
        drive(
            cfg,
            |_, mut wl, mut ops| {
                while ops.next().is_some() {
                    let h = vecs[wl.next_int(vecs.len() as i64) as usize].handle();
                    let op = wl.next_op(&[4, 3, 3, 1]);
                    match op {
                        0 => h.add(wl.next_key()),
                        1 => {
                            h.remove_last();
                        }
                        2 => {
                            h.last_index_of(wl.next_key());
                        }
                        _ => {
                            h.size();
                        }
                    }
                }
            },
            None::<fn()>,
        );
        true
    }

    fn shard_factory(&self, kind: CheckKind) -> Option<ShardFactory> {
        Some(Arc::new(move |_object| match kind {
            CheckKind::Io => Box::new(Checker::io(VectorSpec::new())) as Box<dyn ObjectChecker>,
            CheckKind::Lin => Box::new(Checker::lin(VectorSpec::new())),
            CheckKind::View => Box::new(Checker::view(VectorSpec::new(), VectorReplayer::new())),
        }))
    }

    fn stepping_factory(&self, kind: CheckKind) -> Option<SteppingFactory> {
        spec_stepping(kind, VectorSpec::new)
    }
}

// ---------------------------------------------------------------------
// java.util.StringBuffer — "copying from an unprotected StringBuffer"
// ---------------------------------------------------------------------

const SB_BUFFERS: usize = 4;

/// The string-buffer pool with the unprotected-copy bug.
#[derive(Debug)]
pub struct StringBufferScenario;

impl Scenario for StringBufferScenario {
    fn name(&self) -> &'static str {
        "StringBuffer"
    }

    fn bug(&self) -> &'static str {
        "Copying from an unprotected StringBuffer"
    }

    fn run(&self, cfg: &WorkloadConfig, log: &EventLog, variant: Variant) {
        let v = match variant {
            Variant::Correct => StringBufferVariant::Correct,
            Variant::Buggy => StringBufferVariant::Buggy,
        };
        let pool = BufferPool::new(SB_BUFFERS, v, log.clone());
        let seeder = pool.handle();
        for id in 0..SB_BUFFERS as i64 {
            seeder.append(id, "0123456789");
        }
        drive(
            cfg,
            |_, mut wl, mut ops| {
                let h = pool.handle();
                while ops.next().is_some() {
                    let op = wl.next_op(&[3, 4, 3, 1]);
                    let id = wl.next_int(SB_BUFFERS as i64);
                    match op {
                        0 => h.append(id, "ab"),
                        1 => {
                            h.append_buffer(id, wl.next_int(SB_BUFFERS as i64));
                        }
                        2 => h.set_length(id, wl.next_int(12) as usize),
                        _ => {
                            h.length(id);
                        }
                    }
                }
            },
            None::<fn()>,
        );
    }

    impl_checks!(
        StringBufferSpec::new(SB_BUFFERS),
        StringBufferReplayer::with_buffers(SB_BUFFERS),
    );

    /// §8 multi-object mode: `objects` independent buffer pools, each
    /// seeded and logging under its own [`ObjectId`]; every call picks a
    /// pool from the workload stream.
    fn run_multi(&self, cfg: &WorkloadConfig, log: &EventLog, variant: Variant, objects: u32) -> bool {
        let v = match variant {
            Variant::Correct => StringBufferVariant::Correct,
            Variant::Buggy => StringBufferVariant::Buggy,
        };
        let pools: Vec<BufferPool> = (0..objects.max(1))
            .map(|i| BufferPool::new(SB_BUFFERS, v, log.with_object(ObjectId(i))))
            .collect();
        for pool in &pools {
            let seeder = pool.handle();
            for id in 0..SB_BUFFERS as i64 {
                seeder.append(id, "0123456789");
            }
        }
        drive(
            cfg,
            |_, mut wl, mut ops| {
                while ops.next().is_some() {
                    let h = pools[wl.next_int(pools.len() as i64) as usize].handle();
                    let op = wl.next_op(&[3, 4, 3, 1]);
                    let id = wl.next_int(SB_BUFFERS as i64);
                    match op {
                        0 => h.append(id, "ab"),
                        1 => {
                            h.append_buffer(id, wl.next_int(SB_BUFFERS as i64));
                        }
                        2 => h.set_length(id, wl.next_int(12) as usize),
                        _ => {
                            h.length(id);
                        }
                    }
                }
            },
            None::<fn()>,
        );
        true
    }

    fn shard_factory(&self, kind: CheckKind) -> Option<ShardFactory> {
        Some(Arc::new(move |_object| match kind {
            CheckKind::Io => {
                Box::new(Checker::io(StringBufferSpec::new(SB_BUFFERS))) as Box<dyn ObjectChecker>
            }
            CheckKind::Lin => Box::new(Checker::lin(StringBufferSpec::new(SB_BUFFERS))),
            CheckKind::View => Box::new(Checker::view(
                StringBufferSpec::new(SB_BUFFERS),
                StringBufferReplayer::with_buffers(SB_BUFFERS),
            )),
        }))
    }

    fn stepping_factory(&self, kind: CheckKind) -> Option<SteppingFactory> {
        spec_stepping(kind, || StringBufferSpec::new(SB_BUFFERS))
    }
}

// ---------------------------------------------------------------------
// BLinkTree — "allowing duplicated data nodes"
// ---------------------------------------------------------------------

/// The B-link tree with the duplicate-data-node bug.
#[derive(Debug)]
pub struct BLinkTreeScenario;

impl Scenario for BLinkTreeScenario {
    fn name(&self) -> &'static str {
        "BLinkTree"
    }

    fn bug(&self) -> &'static str {
        "Allowing duplicated data nodes"
    }

    fn run(&self, cfg: &WorkloadConfig, log: &EventLog, variant: Variant) {
        let v = match variant {
            Variant::Correct => BLinkVariant::Correct,
            Variant::Buggy => BLinkVariant::DuplicateDataNodes,
        };
        let tree = BLinkTree::new(v, log.clone());
        let task = cfg.internal_task.then(|| {
            let h = tree.handle();
            move || h.compress()
        });
        drive(
            cfg,
            |_, mut wl, mut ops| {
                let h = tree.handle();
                for i in ops.by_ref() {
                    let op = wl.next_op(&[5, 2, 3]);
                    let k = wl.next_key();
                    match op {
                        0 => h.insert(k, i as i64),
                        1 => {
                            h.delete(k);
                        }
                        _ => {
                            h.lookup(k);
                        }
                    }
                }
            },
            task,
        );
    }

    impl_checks!(BLinkSpec::new(), BLinkReplayer::new());

    /// §8 multi-object mode: `objects` independent trees, each logging
    /// under its own [`ObjectId`]; every call picks a tree from the
    /// workload stream. The compressor services the trees in rotation.
    fn run_multi(&self, cfg: &WorkloadConfig, log: &EventLog, variant: Variant, objects: u32) -> bool {
        let v = match variant {
            Variant::Correct => BLinkVariant::Correct,
            Variant::Buggy => BLinkVariant::DuplicateDataNodes,
        };
        let trees: Vec<BLinkTree> = (0..objects.max(1))
            .map(|i| BLinkTree::new(v, log.with_object(ObjectId(i))))
            .collect();
        let task = cfg.internal_task.then(|| {
            let handles: Vec<_> = trees.iter().map(|t| t.handle()).collect();
            let mut next = 0usize;
            move || {
                handles[next % handles.len()].compress();
                next += 1;
            }
        });
        drive(
            cfg,
            |_, mut wl, mut ops| {
                for i in ops.by_ref() {
                    let h = trees[wl.next_int(trees.len() as i64) as usize].handle();
                    let op = wl.next_op(&[5, 2, 3]);
                    let k = wl.next_key();
                    match op {
                        0 => h.insert(k, i as i64),
                        1 => {
                            h.delete(k);
                        }
                        _ => {
                            h.lookup(k);
                        }
                    }
                }
            },
            task,
        );
        true
    }

    fn shard_factory(&self, kind: CheckKind) -> Option<ShardFactory> {
        Some(Arc::new(move |_object| match kind {
            CheckKind::Io => Box::new(Checker::io(BLinkSpec::new())) as Box<dyn ObjectChecker>,
            CheckKind::Lin => Box::new(Checker::lin(BLinkSpec::new())),
            CheckKind::View => Box::new(Checker::view(BLinkSpec::new(), BLinkReplayer::new())),
        }))
    }

    fn stepping_factory(&self, kind: CheckKind) -> Option<SteppingFactory> {
        spec_stepping(kind, BLinkSpec::new)
    }
}

// ---------------------------------------------------------------------
// Cache — "writing an unprotected dirty cache entry"
// ---------------------------------------------------------------------

const CACHE_HANDLES: i64 = 6;
const CACHE_BUF: usize = 64;

/// The Boxwood cache with the §7.2.2 bug.
#[derive(Debug)]
pub struct CacheScenario;

impl Scenario for CacheScenario {
    fn name(&self) -> &'static str {
        "Cache"
    }

    fn bug(&self) -> &'static str {
        "Writing an unprotected dirty cache entry"
    }

    fn run(&self, cfg: &WorkloadConfig, log: &EventLog, variant: Variant) {
        let v = match variant {
            Variant::Correct => CacheVariant::Correct,
            Variant::Buggy => CacheVariant::Buggy,
        };
        let cache = BoxCache::new(ChunkManager::new(), v, log.clone());
        // The flusher plays the internal-task role; without it the bug
        // cannot manifest, so it always runs.
        let flusher = {
            let h = cache.handle();
            move || h.flush()
        };
        drive(
            cfg,
            |_, mut wl, mut ops| {
                let h = cache.handle();
                for i in ops.by_ref() {
                    let op = wl.next_op(&[6, 3, 1]);
                    let handle = wl.next_int(CACHE_HANDLES);
                    match op {
                        0 => h.write(handle, vec![(i % 251) as u8; CACHE_BUF]),
                        1 => {
                            h.read(handle);
                        }
                        _ => h.revoke(handle),
                    }
                }
            },
            Some(flusher),
        );
    }

    impl_checks!(
        StoreSpec::new(),
        CacheReplayer::new(),
        clean_matches_chunk(),
        entry_in_exactly_one_list(),
    );

    /// §8 multi-object mode: one cache (over its own chunk group) per
    /// object; each call picks a cache from the workload stream. The
    /// flusher services every cache in rotation.
    fn run_multi(&self, cfg: &WorkloadConfig, log: &EventLog, variant: Variant, objects: u32) -> bool {
        let v = match variant {
            Variant::Correct => CacheVariant::Correct,
            Variant::Buggy => CacheVariant::Buggy,
        };
        let caches: Vec<BoxCache> = (0..objects.max(1))
            .map(|i| BoxCache::new(ChunkManager::new(), v, log.with_object(ObjectId(i))))
            .collect();
        let flusher = {
            let handles: Vec<_> = caches.iter().map(|c| c.handle()).collect();
            let mut next = 0usize;
            move || {
                handles[next % handles.len()].flush();
                next += 1;
            }
        };
        drive(
            cfg,
            |_, mut wl, mut ops| {
                for i in ops.by_ref() {
                    let h = caches[wl.next_int(caches.len() as i64) as usize].handle();
                    let op = wl.next_op(&[6, 3, 1]);
                    let handle = wl.next_int(CACHE_HANDLES);
                    match op {
                        0 => h.write(handle, vec![(i % 251) as u8; CACHE_BUF]),
                        1 => {
                            h.read(handle);
                        }
                        _ => h.revoke(handle),
                    }
                }
            },
            Some(flusher),
        );
        true
    }

    fn shard_factory(&self, kind: CheckKind) -> Option<ShardFactory> {
        Some(Arc::new(move |_object| match kind {
            CheckKind::Io => Box::new(Checker::io(StoreSpec::new())) as Box<dyn ObjectChecker>,
            CheckKind::Lin => Box::new(Checker::lin(StoreSpec::new())),
            CheckKind::View => Box::new(
                Checker::view(StoreSpec::new(), CacheReplayer::new())
                    .with_invariant(clean_matches_chunk())
                    .with_invariant(entry_in_exactly_one_list()),
            ),
        }))
    }

    /// The cache replayer is checkpointable, so this scenario supports
    /// continuous *view* refinement alongside I/O and Lin.
    fn stepping_factory(&self, kind: CheckKind) -> Option<SteppingFactory> {
        match kind {
            CheckKind::View => Some(Arc::new(|_object| {
                Box::new(
                    Checker::view(StoreSpec::new(), CacheReplayer::new())
                        .with_invariant(clean_matches_chunk())
                        .with_invariant(entry_in_exactly_one_list()),
                ) as Box<dyn SteppingChecker>
            })),
            _ => spec_stepping(kind, StoreSpec::new),
        }
    }
}

// ---------------------------------------------------------------------
// Lock-free family — Treiber stack & Michael–Scott queue
// ---------------------------------------------------------------------

const LF_CAPACITY: usize = 64;

/// `check`/`check_full`/`check_stream` for the spec-only (lock-free)
/// scenarios: `Io` and `Lin` over the spec, `View` refused with
/// [`unsupported_report`] — these structures log no shared-variable
/// writes, so there is nothing for a replayer to replay.
macro_rules! impl_spec_checks {
    ($spec:expr) => {
        fn check(&self, kind: CheckKind, events: Vec<Event>) -> Report {
            match kind {
                CheckKind::Io => Checker::io($spec).check_events(events),
                CheckKind::Lin => Checker::lin($spec).check_events(events),
                CheckKind::View => unsupported_report(self.name(), kind),
            }
        }

        fn check_full(&self, kind: CheckKind, events: Vec<Event>) -> Report {
            let options = CheckerOptions {
                stop_at_first_violation: false,
                ..CheckerOptions::default()
            };
            match kind {
                CheckKind::Io => Checker::io($spec)
                    .with_options(options)
                    .check_events(events),
                CheckKind::Lin => Checker::lin($spec)
                    .with_options(options)
                    .check_events(events),
                CheckKind::View => unsupported_report(self.name(), kind),
            }
        }

        fn check_stream(
            &self,
            kind: CheckKind,
            receiver: &vyrd_rt::channel::Receiver<Event>,
        ) -> Report {
            match kind {
                CheckKind::Io => Checker::io($spec).check_receiver(receiver),
                CheckKind::Lin => Checker::lin($spec).check_receiver(receiver),
                CheckKind::View => {
                    // Drain the stream so the producer side never blocks
                    // on an abandoned channel before reporting the
                    // configuration error.
                    while receiver.recv().is_ok() {}
                    unsupported_report(self.name(), kind)
                }
            }
        }

        fn supports(&self, kind: CheckKind) -> bool {
            kind != CheckKind::View
        }
    };
}

/// Parks a victim `Pop` inside its ABA window and recycles the node it
/// read underneath it: pop both elements, push two fresh values — the
/// old top slot comes back as the new top, the victim's index-only
/// compare succeeds against it, and its stale commit is one the LIFO
/// specification rejects. Runs before the workload threads start, so
/// the buggy variant's first violation lands at a fixed log position
/// regardless of the workload seed.
fn aba_prologue(stack: &TreiberStack) {
    let h = stack.handle();
    h.push(1);
    h.push(2);
    let gate = Arc::new(std::sync::Barrier::new(2));
    let release = Arc::new(std::sync::Barrier::new(2));
    {
        let gate = Arc::clone(&gate);
        let release = Arc::clone(&release);
        stack.arm_pop_hook(Box::new(move || {
            gate.wait();
            release.wait();
        }));
    }
    let victim = {
        let h = stack.handle();
        std::thread::spawn(move || h.pop())
    };
    gate.wait();
    h.pop();
    h.pop();
    h.push(7);
    h.push(8);
    release.wait();
    victim.join().expect("victim pop thread");
}

/// The Treiber stack with the seeded ABA bug.
#[derive(Debug)]
pub struct TreiberStackScenario;

impl Scenario for TreiberStackScenario {
    fn name(&self) -> &'static str {
        "Treiber-Stack"
    }

    fn bug(&self) -> &'static str {
        "ABA head CAS in Pop (untagged)"
    }

    fn run(&self, cfg: &WorkloadConfig, log: &EventLog, variant: Variant) {
        let v = match variant {
            Variant::Correct => StackVariant::Correct,
            Variant::Buggy => StackVariant::AbaPop,
        };
        let stack = TreiberStack::new(v, LF_CAPACITY, log.clone());
        if variant == Variant::Buggy {
            aba_prologue(&stack);
        }
        drive(
            cfg,
            |_, mut wl, mut ops| {
                let h = stack.handle();
                while ops.next().is_some() {
                    match wl.next_op(&[4, 3, 3]) {
                        0 => {
                            h.push(wl.next_key());
                        }
                        1 => {
                            h.pop();
                        }
                        _ => {
                            h.peek();
                        }
                    }
                }
            },
            None::<fn()>,
        );
    }

    impl_spec_checks!(StackSpec::new());

    /// §8 multi-object mode: one stack per object; the buggy prologue
    /// runs on object 0 only, so exactly one shard carries the seeded
    /// violation.
    fn run_multi(&self, cfg: &WorkloadConfig, log: &EventLog, variant: Variant, objects: u32) -> bool {
        let v = match variant {
            Variant::Correct => StackVariant::Correct,
            Variant::Buggy => StackVariant::AbaPop,
        };
        let stacks: Vec<TreiberStack> = (0..objects.max(1))
            .map(|i| TreiberStack::new(v, LF_CAPACITY, log.with_object(ObjectId(i))))
            .collect();
        if variant == Variant::Buggy {
            aba_prologue(&stacks[0]);
        }
        drive(
            cfg,
            |_, mut wl, mut ops| {
                while ops.next().is_some() {
                    let h = stacks[wl.next_int(stacks.len() as i64) as usize].handle();
                    match wl.next_op(&[4, 3, 3]) {
                        0 => {
                            h.push(wl.next_key());
                        }
                        1 => {
                            h.pop();
                        }
                        _ => {
                            h.peek();
                        }
                    }
                }
            },
            None::<fn()>,
        );
        true
    }

    fn shard_factory(&self, kind: CheckKind) -> Option<ShardFactory> {
        match kind {
            CheckKind::Io => Some(Arc::new(|_object| {
                Box::new(Checker::io(StackSpec::new())) as Box<dyn ObjectChecker>
            })),
            CheckKind::Lin => Some(Arc::new(|_object| {
                Box::new(Checker::lin(StackSpec::new())) as Box<dyn ObjectChecker>
            })),
            CheckKind::View => None,
        }
    }

    fn stepping_factory(&self, kind: CheckKind) -> Option<SteppingFactory> {
        spec_stepping(kind, StackSpec::new)
    }

    fn minimizer(&self, _kind: CheckKind) -> Box<dyn Minimizer> {
        Box::new(DdminMinimizer::focused())
    }

    fn explainer(&self, kind: CheckKind) -> Box<dyn Explainer> {
        match kind {
            CheckKind::Lin => Box::new(LinExplainer),
            _ => Box::new(BasicExplainer),
        }
    }
}

/// Parks a victim `Enqueue` after its premature tail swing (and commit)
/// but before the predecessor link, enqueues behind it, and observes the
/// unreachable front: the dequeue commits an "empty" result while the
/// specification says the queue holds two elements. Runs before the
/// workload threads start, so the buggy variant's first violation lands
/// at a fixed log position regardless of the workload seed.
fn tail_swing_prologue(queue: &MsQueue) {
    let h = queue.handle();
    let gate = Arc::new(std::sync::Barrier::new(2));
    let release = Arc::new(std::sync::Barrier::new(2));
    {
        let gate = Arc::clone(&gate);
        let release = Arc::clone(&release);
        queue.arm_enqueue_hook(Box::new(move || {
            gate.wait();
            release.wait();
        }));
    }
    let victim = {
        let h = queue.handle();
        std::thread::spawn(move || h.enqueue(5))
    };
    gate.wait();
    h.enqueue(6);
    h.dequeue();
    release.wait();
    victim.join().expect("victim enqueue thread");
}

/// The Michael–Scott queue with the seeded tail-swing bug.
#[derive(Debug)]
pub struct MsQueueScenario;

impl Scenario for MsQueueScenario {
    fn name(&self) -> &'static str {
        "MS-Queue"
    }

    fn bug(&self) -> &'static str {
        "Non-atomic tail swing in Enqueue"
    }

    fn run(&self, cfg: &WorkloadConfig, log: &EventLog, variant: Variant) {
        let v = match variant {
            Variant::Correct => QueueVariant::Correct,
            Variant::Buggy => QueueVariant::EarlyTailSwing,
        };
        let queue = MsQueue::new(v, LF_CAPACITY, log.clone());
        if variant == Variant::Buggy {
            tail_swing_prologue(&queue);
        }
        drive(
            cfg,
            |_, mut wl, mut ops| {
                let h = queue.handle();
                while ops.next().is_some() {
                    match wl.next_op(&[4, 3, 3]) {
                        0 => {
                            h.enqueue(wl.next_key());
                        }
                        1 => {
                            h.dequeue();
                        }
                        _ => {
                            h.front();
                        }
                    }
                }
            },
            None::<fn()>,
        );
    }

    impl_spec_checks!(QueueSpec::new());

    /// §8 multi-object mode: one queue per object; the buggy prologue
    /// runs on object 0 only, so exactly one shard carries the seeded
    /// violation.
    fn run_multi(&self, cfg: &WorkloadConfig, log: &EventLog, variant: Variant, objects: u32) -> bool {
        let v = match variant {
            Variant::Correct => QueueVariant::Correct,
            Variant::Buggy => QueueVariant::EarlyTailSwing,
        };
        let queues: Vec<MsQueue> = (0..objects.max(1))
            .map(|i| MsQueue::new(v, LF_CAPACITY, log.with_object(ObjectId(i))))
            .collect();
        if variant == Variant::Buggy {
            tail_swing_prologue(&queues[0]);
        }
        drive(
            cfg,
            |_, mut wl, mut ops| {
                while ops.next().is_some() {
                    let h = queues[wl.next_int(queues.len() as i64) as usize].handle();
                    match wl.next_op(&[4, 3, 3]) {
                        0 => {
                            h.enqueue(wl.next_key());
                        }
                        1 => {
                            h.dequeue();
                        }
                        _ => {
                            h.front();
                        }
                    }
                }
            },
            None::<fn()>,
        );
        true
    }

    fn shard_factory(&self, kind: CheckKind) -> Option<ShardFactory> {
        match kind {
            CheckKind::Io => Some(Arc::new(|_object| {
                Box::new(Checker::io(QueueSpec::new())) as Box<dyn ObjectChecker>
            })),
            CheckKind::Lin => Some(Arc::new(|_object| {
                Box::new(Checker::lin(QueueSpec::new())) as Box<dyn ObjectChecker>
            })),
            CheckKind::View => None,
        }
    }

    fn stepping_factory(&self, kind: CheckKind) -> Option<SteppingFactory> {
        spec_stepping(kind, QueueSpec::new)
    }

    fn minimizer(&self, _kind: CheckKind) -> Box<dyn Minimizer> {
        Box::new(DdminMinimizer::focused())
    }

    fn explainer(&self, kind: CheckKind) -> Box<dyn Explainer> {
        match kind {
            CheckKind::Lin => Box::new(LinExplainer),
            _ => Box::new(BasicExplainer),
        }
    }
}
