//! # vyrd-harness — the paper's experimental apparatus (§7)
//!
//! Glue between the instrumented substrates and the VYRD checkers:
//!
//! * [`workload`] — the §7.1 test-harness generator (shared random key
//!   pool, N threads × M random calls, gradual pool shrink, internal
//!   compression/flush task);
//! * [`scenario`] — the [`Scenario`](scenario::Scenario) abstraction: one
//!   object per benchmark system bundling its workload, specification,
//!   and replayer, runnable offline or with an online verification
//!   thread;
//! * [`scenarios`] — the six systems of Tables 1–3 (Multiset-Vector,
//!   Multiset-BinaryTree, Vector, StringBuffer, BLinkTree, Cache), each
//!   with its paper bug toggleable;
//! * [`detect`] — time-to-detection measurement (Table 1);
//! * [`fault_matrix`] — sharded scenarios crossed with a grid of injected
//!   faults (checker panics, overload sheds, routing drops, torn log
//!   tails), each cell asserted to end in a verdict or an explicitly
//!   degraded report;
//! * [`measure`] / [`tables`] — timing and plain-text table rendering.
//!
//! ```no_run
//! use vyrd_harness::scenario::{record_run, CheckKind, Variant};
//! use vyrd_harness::scenarios::MultisetVectorScenario;
//! use vyrd_harness::workload::WorkloadConfig;
//! use vyrd_core::log::LogMode;
//!
//! let cfg = WorkloadConfig::small();
//! let run = record_run(&MultisetVectorScenario, &cfg, LogMode::View, Variant::Correct);
//! let report = MultisetVectorScenario.check(CheckKind::View, run.events);
//! assert!(report.passed());
//! # use vyrd_harness::scenario::Scenario as _;
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod detect;
pub mod fault_matrix;
pub mod measure;
pub mod scenario;
pub mod scenarios;
pub mod tables;
pub mod workload;

#[cfg(test)]
mod tests {
    use crate::scenario::{
        record_run, run_continuous, run_discarding, run_online, CheckKind, Scenario, Variant,
    };
    use crate::scenarios;
    use crate::workload::WorkloadConfig;
    use vyrd_core::log::LogMode;
    use vyrd_core::segment::{ContinuousOptions, SegmentConfig};

    fn small() -> WorkloadConfig {
        WorkloadConfig {
            threads: 3,
            calls_per_thread: 30,
            key_pool: 10,
            shrink_pool: true,
            internal_task: true,
            seed: 99,
            pace: None,
        }
    }

    #[test]
    fn registry_has_the_six_table_rows() {
        let names: Vec<&str> = scenarios::all().iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "Multiset-Vector",
                "Multiset-BinaryTree",
                "Vector",
                "StringBuffer",
                "BLinkTree",
                "Cache"
            ]
        );
        assert!(scenarios::by_name("Cache").is_some());
        assert!(scenarios::by_name("Nope").is_none());
        for s in scenarios::all() {
            assert!(!s.bug().is_empty());
        }
    }

    #[test]
    fn lockfree_registry_is_reachable_by_name() {
        let names: Vec<&str> = scenarios::lockfree().iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["Treiber-Stack", "MS-Queue"]);
        for name in names {
            let s = scenarios::by_name(name).expect(name);
            assert!(!s.bug().is_empty());
            assert!(s.supports(CheckKind::Io));
            assert!(s.supports(CheckKind::Lin));
            assert!(!s.supports(CheckKind::View));
        }
    }

    #[test]
    fn lockfree_correct_passes_io_and_lin_and_refuses_view() {
        for s in scenarios::lockfree() {
            let cfg = small();
            let run = record_run(s.as_ref(), &cfg, LogMode::Io, Variant::Correct);
            assert!(run.log_stats.events > 0, "{}: nothing was logged", s.name());
            let io = s.check(CheckKind::Io, run.events.clone());
            assert!(io.passed(), "{} io: {io}", s.name());
            let lin = s.check(CheckKind::Lin, run.events.clone());
            assert!(lin.passed(), "{} lin: {lin}", s.name());
            assert!(lin.stats.lin_windows_searched > 0, "{}: observers open windows", s.name());
            // An unsupported mode is a configuration error, never a
            // vacuous PASS.
            let view = s.check(CheckKind::View, run.events);
            assert!(!view.passed(), "{} view must be refused", s.name());
            let v = view.violation.expect("violation");
            assert_eq!(v.category(), "unsupported-mode", "{v}");
        }
    }

    #[test]
    fn lockfree_buggy_fails_io_and_lin_deterministically() {
        for s in scenarios::lockfree() {
            let cfg = small();
            let run = record_run(s.as_ref(), &cfg, LogMode::Io, Variant::Buggy);
            for kind in [CheckKind::Io, CheckKind::Lin] {
                let report = s.check(kind, run.events.clone());
                assert!(!report.passed(), "{} {kind:?}: {report}", s.name());
                let v = report.violation.expect("violation");
                assert_eq!(v.category(), "spec-rejected-commit", "{} {kind:?}: {v}", s.name());
            }
        }
    }

    #[test]
    fn lockfree_online_lin_checking_agrees_with_offline() {
        for s in scenarios::lockfree() {
            let cfg = small();
            let (_, report) = run_online(s.as_ref(), &cfg, CheckKind::Lin, Variant::Correct);
            assert!(report.passed(), "{} online lin: {report}", s.name());
            let (_, report) = run_online(s.as_ref(), &cfg, CheckKind::Lin, Variant::Buggy);
            assert!(!report.passed(), "{} online lin buggy must fail", s.name());
        }
    }

    #[test]
    fn unsupported_stream_mode_drains_and_reports() {
        // View against a lock-free scenario through the *online* path:
        // the producer must not deadlock on an abandoned channel, and the
        // verdict must name the configuration error.
        let s = scenarios::TreiberStackScenario;
        let cfg = small();
        let (_, report) = run_online(&s, &cfg, CheckKind::View, Variant::Correct);
        assert!(!report.passed(), "{report}");
        let v = report.violation.expect("violation");
        assert_eq!(v.category(), "unsupported-mode");
    }

    #[test]
    fn lockfree_continuous_lin_checking_works() {
        let s = scenarios::MsQueueScenario;
        let cfg = small();
        let dir = std::env::temp_dir()
            .join(format!("vyrd-harness-continuous-lin-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let artifacts = run_continuous(
            &s,
            &cfg,
            CheckKind::Lin,
            Variant::Correct,
            SegmentConfig::new(&dir).segment_bytes(4096),
            ContinuousOptions::default(),
        )
        .unwrap();
        assert!(artifacts.report.passed(), "{}", artifacts.report);
        assert_eq!(artifacts.report.stats.events, artifacts.summary.events);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_correct_scenario_passes_both_checkers() {
        for s in scenarios::all() {
            let cfg = small();
            let run = record_run(s.as_ref(), &cfg, LogMode::View, Variant::Correct);
            assert!(
                run.log_stats.events > 0,
                "{}: nothing was logged",
                s.name()
            );
            let io = s.check(CheckKind::Io, run.events.clone());
            assert!(io.passed(), "{} io: {io}", s.name());
            let view = s.check(CheckKind::View, run.events);
            assert!(view.passed(), "{} view: {view}", s.name());
        }
    }

    #[test]
    fn online_checking_agrees_with_offline() {
        for s in scenarios::all() {
            let cfg = small();
            let (_, report) = run_online(s.as_ref(), &cfg, CheckKind::View, Variant::Correct);
            assert!(report.passed(), "{} online: {report}", s.name());
        }
    }

    #[test]
    fn discarding_runs_report_log_stats() {
        let s = scenarios::MultisetVectorScenario;
        let cfg = small();
        let (_, io_stats) = run_discarding(&s, &cfg, LogMode::Io, Variant::Correct);
        let (_, view_stats) = run_discarding(&s, &cfg, LogMode::View, Variant::Correct);
        let (_, off_stats) = run_discarding(&s, &cfg, LogMode::Off, Variant::Correct);
        assert_eq!(off_stats.events, 0);
        assert!(io_stats.events > 0);
        assert!(view_stats.events > io_stats.events, "view logs more");
        assert_eq!(io_stats.writes, 0);
        assert!(view_stats.writes > 0);
    }

    #[test]
    fn continuous_checking_passes_every_correct_scenario() {
        for s in scenarios::all() {
            let cfg = small();
            let dir = std::env::temp_dir().join(format!(
                "vyrd-harness-continuous-{}-{}",
                s.name(),
                std::process::id()
            ));
            std::fs::remove_dir_all(&dir).ok();
            let artifacts = run_continuous(
                s.as_ref(),
                &cfg,
                CheckKind::Io,
                Variant::Correct,
                SegmentConfig::new(&dir).segment_bytes(4096),
                ContinuousOptions::default(),
            )
            .unwrap_or_else(|e| panic!("{}: {e}", s.name()));
            let report = &artifacts.report;
            assert!(report.passed(), "{}: {report}", s.name());
            assert!(!report.is_degraded(), "{}: {:?}", s.name(), report.degradation);
            // Every durably written event reached a checker.
            assert_eq!(report.stats.events, artifacts.summary.events, "{}", s.name());
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn continuous_view_checking_works_where_the_replayer_checkpoints() {
        // The cache replayer and both multiset replayers checkpoint.
        for s in ["Cache", "Multiset-Vector", "Multiset-BinaryTree"] {
            let s = scenarios::by_name(s).expect(s);
            let cfg = small();
            let dir = std::env::temp_dir().join(format!(
                "vyrd-harness-continuous-view-{}-{}",
                s.name(),
                std::process::id()
            ));
            std::fs::remove_dir_all(&dir).ok();
            let artifacts = run_continuous(
                s.as_ref(),
                &cfg,
                CheckKind::View,
                Variant::Correct,
                SegmentConfig::new(&dir).segment_bytes(8192),
                ContinuousOptions::default(),
            )
            .unwrap_or_else(|e| panic!("{}: {e}", s.name()));
            assert!(artifacts.report.passed(), "{}: {}", s.name(), artifacts.report);
            assert!(artifacts.report.stats.view_comparisons > 0, "{}", s.name());
            std::fs::remove_dir_all(&dir).ok();
        }

        // Scenarios whose replayer cannot checkpoint refuse view mode
        // rather than failing mid-run.
        let err = run_continuous(
            &scenarios::BLinkTreeScenario,
            &small(),
            CheckKind::View,
            Variant::Correct,
            SegmentConfig::new(std::env::temp_dir().join("vyrd-harness-unsupported")),
            ContinuousOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::Unsupported);
    }

    #[test]
    fn buggy_runs_are_reproducible_per_seed() {
        let s = scenarios::JavaVectorScenario;
        let cfg = small();
        let a = record_run(&s, &cfg, LogMode::Io, Variant::Buggy);
        let b = record_run(&s, &cfg, LogMode::Io, Variant::Buggy);
        // Interleavings differ between runs, but both produce well-formed
        // logs the checker can consume without malformed-log complaints.
        for events in [a.events, b.events] {
            let report = s.check(CheckKind::Io, events);
            if let Some(v) = &report.violation {
                assert_ne!(v.category(), "malformed-log", "{v}");
            }
        }
    }
}
