//! Timing and aggregation utilities for the experiments.

use std::time::{Duration, Instant};

/// Runs `f`, returning its result and wall-clock duration.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// A small online aggregator for repeated measurements.
#[derive(Clone, Copy, Debug, Default)]
pub struct Aggregate {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Aggregate {
    /// Creates an empty aggregate.
    pub fn new() -> Aggregate {
        Aggregate {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, sample: f64) {
        self.count += 1;
        self.sum += sample;
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Adds a duration sample, in seconds.
    pub fn add_duration(&mut self, d: Duration) {
        self.add(d.as_secs_f64());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_measures_something() {
        let (value, d) = timed(|| {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(value, 42);
        assert!(d >= Duration::from_millis(4));
    }

    #[test]
    fn aggregate_statistics() {
        let mut a = Aggregate::new();
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.min(), 0.0);
        for x in [1.0, 2.0, 3.0] {
            a.add(x);
        }
        assert_eq!(a.count(), 3);
        assert_eq!(a.mean(), 2.0);
        assert_eq!(a.min(), 1.0);
        assert_eq!(a.max(), 3.0);
        assert_eq!(a.sum(), 6.0);
        a.add_duration(Duration::from_secs(4));
        assert_eq!(a.max(), 4.0);
    }
}
