//! Workload generation per §7.1.
//!
//! "Each test program first generates a random pool of keys to be shared
//! by all threads as arguments for method calls. Then the program creates
//! a number of threads each of which, using arguments randomly chosen
//! from the pool, issues a given number of random method calls to the
//! same data structure instance concurrently. The pool is reduced
//! gradually over time to focus more concurrent method calls on a
//! smaller region of the data structure."

use std::time::{Duration, Instant};

use vyrd_rt::rng::Rng;
use vyrd_rt::time::Pacer;

/// Open-loop pacing for a workload: a target aggregate arrival rate and
/// a wall-clock duration. When set on a [`WorkloadConfig`], threads stop
/// issuing calls at the duration deadline instead of after a fixed call
/// count, and each call is released on a fixed arrival schedule —
/// *never* rescheduled when the system under test falls behind (that is
/// the open-loop property: offered load is independent of service rate,
/// so queues are allowed to grow).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PaceConfig {
    /// Aggregate target arrival rate across all threads, calls/second.
    /// 0 means flat-out (no pacing, duration-bounded only).
    pub rate_per_sec: u64,
    /// How long the workload runs.
    pub duration: Duration,
}

/// Parameters of one workload run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkloadConfig {
    /// Number of application threads issuing method calls.
    pub threads: usize,
    /// Method calls issued by each thread (closed-loop mode; ignored
    /// when `pace` is set).
    pub calls_per_thread: usize,
    /// Size of the initial shared key pool.
    pub key_pool: usize,
    /// Reduce the effective pool over the run (focus contention).
    pub shrink_pool: bool,
    /// Run the structure's internal task (compression thread / cache
    /// flusher) continuously alongside the workload.
    pub internal_task: bool,
    /// RNG seed; each thread derives its stream from this and its index.
    pub seed: u64,
    /// `Some` switches the run from closed-loop (fixed call count) to
    /// open-loop (arrival-rate driven, duration-bounded).
    pub pace: Option<PaceConfig>,
}

impl WorkloadConfig {
    /// A compact default configuration used by tests.
    pub fn small() -> WorkloadConfig {
        WorkloadConfig {
            threads: 4,
            calls_per_thread: 50,
            key_pool: 16,
            shrink_pool: true,
            internal_task: false,
            seed: 42,
            pace: None,
        }
    }

    /// Total method calls across application threads (closed-loop).
    pub fn total_calls(&self) -> usize {
        self.threads * self.calls_per_thread
    }

    /// Derives the configuration with a different seed (for repeated
    /// detection runs).
    pub fn with_seed(mut self, seed: u64) -> WorkloadConfig {
        self.seed = seed;
        self
    }

    /// Derives the configuration with open-loop pacing.
    pub fn with_pace(mut self, pace: PaceConfig) -> WorkloadConfig {
        self.pace = Some(pace);
        self
    }
}

/// One thread's call allowance: either a fixed count (closed-loop) or
/// an open-loop arrival schedule with a deadline.
///
/// Scenario loops draw from it — `while let Some(i) = budget.next()` —
/// so the same workload code serves both modes; `i` is the call index
/// the loop would have used as its counter.
#[derive(Debug)]
pub enum OpBudget {
    /// Closed-loop: exactly `remaining` more calls.
    Calls {
        /// Calls left to issue.
        remaining: usize,
        /// Calls already issued (the next call's index).
        issued: usize,
    },
    /// Open-loop: calls released on the pacer's fixed schedule until
    /// the deadline.
    Paced {
        /// The thread's arrival schedule.
        pacer: Pacer,
        /// Wall-clock stop time.
        deadline: Instant,
        /// Calls already issued (the next call's index).
        issued: usize,
    },
}

impl OpBudget {
    /// The budget for thread `index` of a run that started at `start`.
    ///
    /// In paced mode each thread runs at `rate / threads`, phase-shifted
    /// by its index so the per-thread schedules interleave instead of
    /// thundering on the same instants.
    pub fn new(cfg: &WorkloadConfig, index: usize, start: Instant) -> OpBudget {
        match cfg.pace {
            None => OpBudget::Calls {
                remaining: cfg.calls_per_thread,
                issued: 0,
            },
            Some(pace) => {
                let threads = cfg.threads.max(1) as u64;
                let per_thread = pace.rate_per_sec / threads;
                let phase = if per_thread == 0 {
                    Duration::ZERO
                } else {
                    Duration::from_nanos(
                        (1_000_000_000 / per_thread.max(1)) * (index as u64) / threads,
                    )
                };
                OpBudget::Paced {
                    pacer: Pacer::with_phase(start, per_thread, phase),
                    deadline: start + pace.duration,
                    issued: 0,
                }
            }
        }
    }

    /// Calls issued so far.
    pub fn issued(&self) -> usize {
        match self {
            OpBudget::Calls { issued, .. } | OpBudget::Paced { issued, .. } => *issued,
        }
    }
}

/// Issues the next call, yielding its index — ends when the budget is
/// spent (count exhausted, or deadline reached). Paced budgets block
/// until the call's scheduled arrival when ahead of schedule and yield
/// immediately when behind.
impl Iterator for OpBudget {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self {
            OpBudget::Calls { remaining, issued } => {
                if *remaining == 0 {
                    return None;
                }
                *remaining -= 1;
                let i = *issued;
                *issued += 1;
                Some(i)
            }
            OpBudget::Paced {
                pacer,
                deadline,
                issued,
            } => {
                // Wall-clock stop: a flat-out pacer (rate 0) has every
                // arrival due at the start, so the schedule alone would
                // never end the run.
                if Instant::now() >= *deadline {
                    return None;
                }
                pacer.next_arrival_before(*deadline)?;
                let i = *issued;
                *issued += 1;
                Some(i)
            }
        }
    }
}

/// Per-thread random stream over the shared key pool.
#[derive(Debug)]
pub struct ThreadWorkload {
    rng: Rng,
    pool: Vec<i64>,
    calls: usize,
    issued: usize,
    shrink: bool,
}

impl ThreadWorkload {
    /// Creates the stream for thread `index` of a run.
    pub fn new(cfg: &WorkloadConfig, index: usize) -> ThreadWorkload {
        // The pool itself is shared (same seed ⇒ same pool in every
        // thread); per-thread choice streams differ.
        let mut pool_rng = Rng::seed_from_u64(cfg.seed);
        let pool: Vec<i64> = (0..cfg.key_pool.max(1))
            .map(|_| pool_rng.gen_range(0..1_000_000))
            .collect();
        ThreadWorkload {
            rng: Rng::seed_from_u64(
                cfg.seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
            pool,
            calls: cfg.calls_per_thread,
            issued: 0,
            shrink: cfg.shrink_pool,
        }
    }

    /// Picks the next key from the (gradually shrinking) pool.
    pub fn next_key(&mut self) -> i64 {
        let len = self.effective_pool_len();
        self.pool[self.rng.gen_range(0..len)]
    }

    /// Current effective pool size: shrinks linearly from the full pool
    /// to a quarter of it over the run.
    fn effective_pool_len(&self) -> usize {
        if !self.shrink || self.calls == 0 {
            return self.pool.len();
        }
        let progress = self.issued.min(self.calls) as f64 / self.calls as f64;
        let full = self.pool.len() as f64;
        let len = full - progress * full * 0.75;
        (len.ceil() as usize).clamp(1, self.pool.len())
    }

    /// Draws the next operation as an index into `weights` (one weight
    /// per operation kind), advancing the shrink schedule.
    pub fn next_op(&mut self, weights: &[u32]) -> usize {
        self.issued += 1;
        let total: u32 = weights.iter().sum();
        let mut draw = self.rng.gen_range(0..total.max(1));
        for (i, &w) in weights.iter().enumerate() {
            if draw < w {
                return i;
            }
            draw -= w;
        }
        weights.len() - 1
    }

    /// A raw random integer in `0..bound` (for non-key parameters).
    pub fn next_int(&mut self, bound: i64) -> i64 {
        self.rng.gen_range(0..bound.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_shared_across_threads() {
        let cfg = WorkloadConfig::small();
        let a = ThreadWorkload::new(&cfg, 0);
        let b = ThreadWorkload::new(&cfg, 1);
        assert_eq!(a.pool, b.pool);
    }

    #[test]
    fn streams_differ_across_threads_but_are_reproducible() {
        let cfg = WorkloadConfig::small();
        let mut a0 = ThreadWorkload::new(&cfg, 0);
        let mut a0_again = ThreadWorkload::new(&cfg, 0);
        let mut a1 = ThreadWorkload::new(&cfg, 1);
        let seq0: Vec<i64> = (0..10).map(|_| a0.next_key()).collect();
        let seq0_again: Vec<i64> = (0..10).map(|_| a0_again.next_key()).collect();
        let seq1: Vec<i64> = (0..10).map(|_| a1.next_key()).collect();
        assert_eq!(seq0, seq0_again);
        assert_ne!(seq0, seq1);
    }

    #[test]
    fn pool_shrinks_over_the_run() {
        let cfg = WorkloadConfig {
            key_pool: 100,
            calls_per_thread: 100,
            ..WorkloadConfig::small()
        };
        let mut w = ThreadWorkload::new(&cfg, 0);
        assert_eq!(w.effective_pool_len(), 100);
        for _ in 0..100 {
            w.next_op(&[1]);
        }
        assert_eq!(w.effective_pool_len(), 25);
    }

    #[test]
    fn no_shrink_keeps_the_pool() {
        let cfg = WorkloadConfig {
            shrink_pool: false,
            ..WorkloadConfig::small()
        };
        let mut w = ThreadWorkload::new(&cfg, 0);
        for _ in 0..50 {
            w.next_op(&[1]);
        }
        assert_eq!(w.effective_pool_len(), cfg.key_pool);
    }

    #[test]
    fn op_weights_are_respected() {
        let cfg = WorkloadConfig::small();
        let mut w = ThreadWorkload::new(&cfg, 0);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[w.next_op(&[1, 1, 8])] += 1;
        }
        assert!(counts[2] > counts[0] * 3, "{counts:?}");
        assert!(counts[0] > 0 && counts[1] > 0);
    }

    #[test]
    fn config_helpers() {
        let cfg = WorkloadConfig::small().with_seed(7);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.total_calls(), 4 * 50);
    }

    #[test]
    fn closed_loop_budget_yields_exactly_the_call_count() {
        let cfg = WorkloadConfig::small();
        let mut b = OpBudget::new(&cfg, 0, Instant::now());
        let indices: Vec<usize> = std::iter::from_fn(|| b.next()).collect();
        assert_eq!(indices, (0..cfg.calls_per_thread).collect::<Vec<_>>());
        assert_eq!(b.next(), None, "spent budgets stay spent");
        assert_eq!(b.issued(), cfg.calls_per_thread);
    }

    #[test]
    fn paced_budget_stops_at_the_deadline() {
        let cfg = WorkloadConfig::small().with_pace(PaceConfig {
            rate_per_sec: 40_000,
            duration: Duration::from_millis(40),
        });
        let start = Instant::now();
        let mut b = OpBudget::new(&cfg, 0, start);
        let mut n = 0usize;
        while b.next().is_some() {
            n += 1;
        }
        assert!(n > 0, "paced budget issued nothing");
        // 40k/s over 4 threads for 40ms ≈ 400 arrivals per thread; the
        // deadline must cap the schedule even if the loop runs fast.
        assert!(n <= 401, "issued past the schedule: {n}");
        assert!(
            start.elapsed() >= Duration::from_millis(30),
            "returned long before the deadline"
        );
    }

    #[test]
    fn flat_out_pace_is_duration_bounded_only() {
        let cfg = WorkloadConfig::small().with_pace(PaceConfig {
            rate_per_sec: 0,
            duration: Duration::from_millis(10),
        });
        let mut b = OpBudget::new(&cfg, 2, Instant::now());
        let mut n = 0usize;
        while b.next().is_some() && n < 100_000 {
            n += 1;
        }
        assert!(n >= 1_000, "flat-out pace should issue freely: {n}");
    }
}
