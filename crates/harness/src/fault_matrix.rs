//! The fault matrix: every sharded scenario crossed with a grid of
//! injected faults, each cell asserted to end in a verdict or an
//! *explicitly degraded* report — never a hang, an abort, or a clean
//! pass that silently skipped coverage.
//!
//! This is the robustness counterpart of `tests/shard_agreement.rs`: the
//! agreement tests establish that sharded checking is verdict-preserving
//! on healthy runs; the matrix establishes what happens when pieces of
//! the pipeline misbehave. Each case installs a seeded
//! [`FaultPlan`](vyrd_rt::fault::FaultPlan) (so a CI failure replays from
//! its logged seed, see [`vyrd_rt::fault::SEED_ENV`]), drives a recorded
//! multi-object trace through a supervised [`VerifierPool`], and checks
//! the degraded report against the offline per-object ground truth.
//!
//! Fault plans are process-global: [`run_matrix`] runs its cells
//! sequentially, and callers must not run it concurrently with anything
//! else that installs plans (keep it in its own test binary, or behind a
//! mutex).

use std::fmt;
use std::time::Duration;

use vyrd_core::codec::{self, DecodeOutcome};
use vyrd_core::log::EventLog;
use vyrd_core::pool::{PoolReport, SupervisorConfig, VerifierPool};
use vyrd_core::shard::{partition_by_object, ShardConfig};
use vyrd_core::violation::Verdict;
use vyrd_core::{Event, ObjectId};
use vyrd_rt::channel;
use vyrd_rt::fault::{self, FaultAction, FaultPlan, FaultRule};
use vyrd_rt::rng::Rng;

use crate::scenario::{CheckKind, Scenario, Variant};
use crate::scenarios;
use crate::workload::WorkloadConfig;

/// Objects per multi-object run (one log shard each).
const OBJECTS: u32 = 3;
/// Verifier threads per pool — one per object, so no case depends on
/// shard hand-off order.
const WORKERS: usize = OBJECTS as usize;

/// One cell of the matrix: a scenario crossed with a fault case.
#[derive(Debug)]
pub struct MatrixOutcome {
    /// Scenario row label (e.g. `"Multiset-Vector"`).
    pub scenario: &'static str,
    /// Fault case name (e.g. `"worker-panic-restart"`).
    pub case: &'static str,
    /// The matrix seed the cell ran under (replay with
    /// `VYRD_FAULT_SEED=<seed>`).
    pub seed: u64,
    /// `Ok(summary)` when every assertion of the case held, `Err(detail)`
    /// otherwise.
    pub result: Result<String, String>,
}

impl MatrixOutcome {
    /// Whether the cell's assertions all held.
    pub fn passed(&self) -> bool {
        self.result.is_ok()
    }
}

impl fmt::Display for MatrixOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (mark, detail) = match &self.result {
            Ok(s) => ("ok", s.as_str()),
            Err(s) => ("FAILED", s.as_str()),
        };
        write!(
            f,
            "{:<18} {:<24} {mark}: {detail}",
            self.scenario, self.case
        )
    }
}

fn cfg(seed: u64) -> WorkloadConfig {
    WorkloadConfig {
        threads: 4,
        calls_per_thread: 25,
        key_pool: 8,
        shrink_pool: true,
        internal_task: true,
        seed,
        pace: None,
    }
}

/// Records one multi-object run of the correct variant into memory.
fn record_multi(scenario: &dyn Scenario, seed: u64) -> Vec<Event> {
    let log = EventLog::in_memory(CheckKind::View.log_mode());
    assert!(
        scenario.run_multi(&cfg(seed), &log, Variant::Correct, OBJECTS),
        "{} should support multi-object runs",
        scenario.name()
    );
    log.snapshot()
}

/// Re-appends a recorded trace into a supervised pool (thread and object
/// ids intact) and collects the per-object + merged reports. Faults armed
/// by the caller fire inside this pipeline: on append, on routing, and in
/// the per-shard checkers.
fn pool_report(
    scenario: &dyn Scenario,
    events: &[Event],
    config: ShardConfig,
    supervisor: SupervisorConfig,
) -> PoolReport {
    let factory = scenario
        .shard_factory(CheckKind::View)
        .expect("sharded scenario has a factory");
    let pool = VerifierPool::spawn_supervised(
        CheckKind::View.log_mode(),
        WORKERS,
        config,
        supervisor,
        move |object| factory(object),
    );
    for e in events {
        pool.log().append_event(e.clone());
    }
    pool.finish_all()
}

/// Ground truth: the offline per-object verdict for each shard of the
/// trace, computed with no faults armed.
fn offline_verdicts(scenario: &dyn Scenario, events: &[Event]) -> Vec<(ObjectId, bool)> {
    let factory = scenario
        .shard_factory(CheckKind::View)
        .expect("sharded scenario has a factory");
    partition_by_object(events.iter().cloned())
        .into_iter()
        .map(|(object, shard)| {
            let (tx, rx) = channel::unbounded();
            for e in shard {
                tx.send(e).expect("receiver alive");
            }
            drop(tx);
            (object, factory(object).check(&rx).passed())
        })
        .collect()
}

/// Case: no faults. The pool must produce a clean [`Verdict::Pass`] with
/// zero degradation counters, agreeing shard-for-shard with the offline
/// checks.
fn case_clean(scenario: &dyn Scenario, seed: u64) -> Result<String, String> {
    let events = record_multi(scenario, seed);
    let all = pool_report(scenario, &events, ShardConfig::default(), SupervisorConfig::default());
    if all.merged.verdict() != Verdict::Pass {
        return Err(format!("expected a clean PASS, got: {}", all.merged));
    }
    if all.merged.is_degraded() {
        return Err(format!("clean run reported degradation: {}", all.merged));
    }
    let offline = offline_verdicts(scenario, &events);
    for (object, passed) in &offline {
        let pooled = all
            .per_object
            .iter()
            .find(|(o, _)| o == object)
            .ok_or_else(|| format!("{object} missing from pool report"))?;
        if pooled.1.passed() != *passed {
            return Err(format!(
                "{object}: pool={} offline pass={passed}",
                pooled.1
            ));
        }
    }
    Ok(format!(
        "clean PASS, {} events, {} shards agree with offline",
        all.merged.stats.events,
        offline.len()
    ))
}

/// Case: the checker of shard 1 panics once. The supervisor must restart
/// it; because the `pool.check.*` site fires before any event is
/// consumed, the retry re-checks the full shard and every per-object
/// verdict still matches the offline ground truth — but the report must
/// say `DEGRADED PASS`, never a clean one.
fn case_panic_restart(scenario: &dyn Scenario, seed: u64) -> Result<String, String> {
    let events = record_multi(scenario, seed);
    let _scope = fault::install(
        FaultPlan::seeded(seed).rule("pool.check.1", FaultRule::once(FaultAction::Panic)),
    );
    let all = pool_report(scenario, &events, ShardConfig::default(), SupervisorConfig::default());
    drop(_scope);
    let d = &all.merged.degradation;
    if d.restarts == 0 {
        return Err(format!("no restart recorded: {}", all.merged));
    }
    if all.merged.verdict() != Verdict::DegradedPass {
        return Err(format!("expected DEGRADED PASS, got: {}", all.merged));
    }
    let offline = offline_verdicts(scenario, &events);
    for (object, passed) in &offline {
        let pooled = all
            .per_object
            .iter()
            .find(|(o, _)| o == object)
            .ok_or_else(|| format!("{object} missing from pool report"))?;
        if pooled.1.passed() != *passed {
            return Err(format!(
                "{object}: pool={} offline pass={passed}",
                pooled.1
            ));
        }
    }
    Ok(format!(
        "survived 1 checker panic with {} restart(s), verdicts still agree",
        d.restarts
    ))
}

/// Case: the checker of shard 1 panics on every attempt. The supervisor
/// must abandon that shard with a structured [`ShardFailure`]
/// (`events_lost` accounted), while the other K−1 shards' verdicts still
/// match the offline ground truth.
///
/// [`ShardFailure`]: vyrd_core::violation::ShardFailure
fn case_panic_exhausted(scenario: &dyn Scenario, seed: u64) -> Result<String, String> {
    let events = record_multi(scenario, seed);
    let _scope = fault::install(
        FaultPlan::seeded(seed).rule("pool.check.1", FaultRule::always(FaultAction::Panic)),
    );
    let supervisor = SupervisorConfig {
        max_restarts: 1,
        backoff: Duration::from_micros(200),
    };
    let all = pool_report(scenario, &events, ShardConfig::default(), supervisor);
    drop(_scope);
    let d = &all.merged.degradation;
    let failure = d
        .shard_failures
        .iter()
        .find(|f| f.object == ObjectId(1))
        .ok_or_else(|| format!("no ShardFailure for object 1: {}", all.merged))?;
    if failure.events_lost == 0 {
        return Err("abandoned shard reported zero events_lost".to_owned());
    }
    if !all.merged.is_degraded() {
        return Err(format!("exhausted shard not surfaced as degraded: {}", all.merged));
    }
    let offline = offline_verdicts(scenario, &events);
    for (object, passed) in offline.iter().filter(|(o, _)| *o != ObjectId(1)) {
        let pooled = all
            .per_object
            .iter()
            .find(|(o, _)| o == object)
            .ok_or_else(|| format!("{object} missing from pool report"))?;
        if pooled.1.passed() != *passed {
            return Err(format!(
                "surviving {object}: pool={} offline pass={passed}",
                pooled.1
            ));
        }
    }
    Ok(format!(
        "shard 1 abandoned after {} restart(s), {} events lost, other {} shards agree",
        failure.restarts,
        failure.events_lost,
        offline.len().saturating_sub(1)
    ))
}

/// Case: shard 0's checker stalls (an injected delay before it starts
/// consuming) while the shard channel is tiny and the overload policy is
/// `Shed`. Appends must never block indefinitely: the budget runs out,
/// the shard is tombstoned, and the shed events show up as degraded
/// coverage — the one thing that must not happen is a clean pass.
fn case_overload_shed(scenario: &dyn Scenario, seed: u64) -> Result<String, String> {
    let events = record_multi(scenario, seed);
    let _scope = fault::install(FaultPlan::seeded(seed).rule(
        "pool.check.0",
        FaultRule::once(FaultAction::Delay(Duration::from_millis(150))),
    ));
    let config = ShardConfig::bounded_shedding(2, Duration::from_millis(1), 4);
    let all = pool_report(scenario, &events, config, SupervisorConfig::default());
    drop(_scope);
    let d = &all.merged.degradation;
    if d.sheds() == 0 {
        return Err(format!("expected sheds under overload, got: {}", all.merged));
    }
    if all.merged.verdict() == Verdict::Pass {
        return Err(format!("shed coverage reported as a clean PASS: {}", all.merged));
    }
    Ok(format!(
        "completed under overload, {} events shed, verdict {}",
        d.sheds(),
        all.merged.verdict()
    ))
}

/// Case: the router drops a fixed number of events on the floor
/// (`shard.route` failpoint) — a budgeted stand-in for any fan-out loss.
/// The loss must be counted per object and degrade the verdict.
fn case_routing_drop(scenario: &dyn Scenario, seed: u64) -> Result<String, String> {
    const DROPS: u64 = 7;
    let events = record_multi(scenario, seed);
    let _scope = fault::install(FaultPlan::seeded(seed).rule(
        "shard.route",
        FaultRule::always(FaultAction::Drop).after(3).times(DROPS),
    ));
    let all = pool_report(scenario, &events, ShardConfig::default(), SupervisorConfig::default());
    drop(_scope);
    let d = &all.merged.degradation;
    if d.sheds() != DROPS {
        return Err(format!("expected exactly {DROPS} sheds, got {}: {}", d.sheds(), all.merged));
    }
    if all.merged.verdict() == Verdict::Pass {
        return Err(format!("dropped routing reported as a clean PASS: {}", all.merged));
    }
    Ok(format!("{DROPS} routed events dropped, all counted, verdict {}", all.merged.verdict()))
}

/// Case: a worker thread fails to spawn (`pool.spawn` failpoint). The
/// shards that worker would have serviced are checked inline during
/// `finish`, so coverage is complete — the report notes the fallback but
/// the verdict stays clean and agrees with the offline checks.
fn case_spawn_fallback(scenario: &dyn Scenario, seed: u64) -> Result<String, String> {
    let events = record_multi(scenario, seed);
    let _scope = fault::install(
        FaultPlan::seeded(seed).rule("pool.spawn", FaultRule::always(FaultAction::Drop)),
    );
    let all = pool_report(scenario, &events, ShardConfig::default(), SupervisorConfig::default());
    drop(_scope);
    let d = &all.merged.degradation;
    if d.spawn_fallbacks == 0 {
        return Err(format!("no inline fallback recorded: {}", all.merged));
    }
    if all.merged.verdict() != Verdict::Pass {
        return Err(format!(
            "inline fallback checked everything, so the verdict must stay PASS: {}",
            all.merged
        ));
    }
    let offline = offline_verdicts(scenario, &events);
    for (object, passed) in &offline {
        let pooled = all
            .per_object
            .iter()
            .find(|(o, _)| o == object)
            .ok_or_else(|| format!("{object} missing from pool report"))?;
        if pooled.1.passed() != *passed {
            return Err(format!("{object}: pool={} offline pass={passed}", pooled.1));
        }
    }
    Ok(format!(
        "every spawn refused, {} shard(s) checked inline, verdicts agree",
        d.spawn_fallbacks
    ))
}

/// Case: the recorded trace is written to the v3 on-disk format and its
/// tail torn off at a seeded offset (a crash mid-write). Decoding must
/// never panic: [`codec::read_log_recovering`] yields the maximal clean
/// prefix, and the offline checkers consume that prefix to a verdict.
fn case_torn_log_tail(scenario: &dyn Scenario, seed: u64) -> Result<String, String> {
    let events = record_multi(scenario, seed);
    let mut bytes = Vec::new();
    codec::write_log(&mut bytes, &events).map_err(|e| format!("write_log: {e}"))?;
    // Tear somewhere in the back half so a meaningful prefix survives.
    let mut rng = Rng::seed_from_u64(seed ^ 0x7082_104e);
    let cut = bytes.len() / 2 + (rng.next_u64() as usize) % (bytes.len() / 2);
    bytes.truncate(cut);
    let outcome = codec::read_log_recovering(&bytes[..]);
    let (prefix, detail) = match outcome {
        DecodeOutcome::Complete { records } => (records, "tail tore on a frame boundary".to_owned()),
        DecodeOutcome::RecoveredPrefix {
            records,
            truncated_at,
            ref detail,
            ..
        } => {
            if truncated_at > cut as u64 {
                return Err(format!(
                    "recovered past the torn tail: truncated_at {truncated_at} > {cut}"
                ));
            }
            (records, format!("recovered at byte {truncated_at}: {detail}"))
        }
    };
    if prefix.len() > events.len() || prefix[..] != events[..prefix.len()] {
        return Err("recovered records are not a prefix of the original trace".to_owned());
    }
    // A torn prefix can end mid-method; the checkers must still reach a
    // verdict (possibly a malformed-log violation), never panic or hang.
    let shards = offline_verdicts(scenario, &prefix);
    Ok(format!(
        "{} of {} events recovered ({detail}), {} shard(s) checked to a verdict",
        prefix.len(),
        events.len(),
        shards.len()
    ))
}

/// The grid: every fault case in [`run_matrix`]'s order, by name.
pub const CASES: [&str; 7] = [
    "clean",
    "worker-panic-restart",
    "worker-panic-exhausted",
    "overload-shed",
    "routing-drop",
    "spawn-fallback",
    "torn-log-tail",
];

/// Runs the full matrix — every sharded scenario crossed with every fault
/// case — under the given seed and returns one outcome per cell. Panics
/// escaping a cell are themselves caught and reported as that cell's
/// failure, so one bad cell never hides the rest of the grid.
pub fn run_matrix(seed: u64) -> Vec<MatrixOutcome> {
    type Case = fn(&dyn Scenario, u64) -> Result<String, String>;
    let cases: [(&'static str, Case); 7] = [
        ("clean", case_clean),
        ("worker-panic-restart", case_panic_restart),
        ("worker-panic-exhausted", case_panic_exhausted),
        ("overload-shed", case_overload_shed),
        ("routing-drop", case_routing_drop),
        ("spawn-fallback", case_spawn_fallback),
        ("torn-log-tail", case_torn_log_tail),
    ];
    let mut outcomes = Vec::new();
    for scenario in scenarios::all() {
        if scenario.shard_factory(CheckKind::View).is_none() {
            continue;
        }
        for (name, case) in cases {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                case(scenario.as_ref(), seed)
            }))
            .unwrap_or_else(|panic| {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_owned());
                Err(format!("case panicked: {msg}"))
            });
            // A panicking case must not leave its faults armed for the
            // next cell.
            fault::clear();
            outcomes.push(MatrixOutcome {
                scenario: scenario.name(),
                case: name,
                seed,
                result,
            });
        }
    }
    outcomes
}
