//! Checkpoint round-trip coverage for every scenario family: a checker
//! split at an arbitrary event boundary, serialized through the real
//! checkpoint *file* format (framed, checksummed, fsynced), restored
//! into a fresh checker, and fed the rest of the trace must end with
//! exactly the verdict and counters of a checker that saw the whole
//! trace in one sitting — on pinned seeds, for both the correct and the
//! buggy variant of each system.

use std::path::PathBuf;

use vyrd_core::segment::checkpoint::{self, Checkpoint};
use vyrd_core::violation::{Degradation, Report};
use vyrd_core::{Event, ObjectId};
use vyrd_harness::scenario::{record_run, CheckKind, Scenario, Variant};
use vyrd_harness::scenarios;
use vyrd_harness::workload::WorkloadConfig;

const SEED: u64 = 3_405_691_582;

fn cfg() -> WorkloadConfig {
    WorkloadConfig {
        threads: 3,
        calls_per_thread: 40,
        key_pool: 10,
        shrink_pool: true,
        internal_task: true,
        seed: SEED,
        pace: None,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("vyrd-ckpt-{tag}-{}", std::process::id()))
}

/// Checks `events` straight through (the reference run).
fn check_scratch(scenario: &dyn Scenario, kind: CheckKind, events: &[Event]) -> Report {
    let factory = scenario.stepping_factory(kind).expect("stepping factory");
    let mut checker = factory(ObjectId(0));
    for e in events {
        checker.feed(e.clone());
    }
    checker.finish()
}

/// Checks `events` with a save/persist/restore cycle at `split`: the
/// state crosses the on-disk checkpoint format, not just memory.
fn check_via_checkpoint(
    scenario: &dyn Scenario,
    kind: CheckKind,
    events: &[Event],
    split: usize,
    tag: &str,
) -> Report {
    let factory = scenario.stepping_factory(kind).expect("stepping factory");
    let mut first = factory(ObjectId(0));
    for e in &events[..split] {
        first.feed(e.clone());
    }
    let state = first
        .save_state()
        .unwrap_or_else(|e| panic!("{} split {split}: save_state: {e}", scenario.name()));
    drop(first);

    let dir = temp_dir(tag);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("checkpoint dir");
    let path = checkpoint::write_checkpoint(
        &dir,
        &Checkpoint {
            next_seq: split as u64,
            states: vec![(ObjectId(0), state)],
            degradation: Degradation::default(),
        },
    )
    .expect("write checkpoint");
    let restored = checkpoint::read_checkpoint(&path).expect("read checkpoint");
    assert_eq!(restored.next_seq, split as u64);
    std::fs::remove_dir_all(&dir).ok();

    let mut second = factory(ObjectId(0));
    let (object, state) = &restored.states[0];
    assert_eq!(*object, ObjectId(0));
    second
        .restore_state(state)
        .unwrap_or_else(|e| panic!("{} split {split}: restore_state: {e}", scenario.name()));
    for e in &events[split..] {
        second.feed(e.clone());
    }
    second.finish()
}

/// The equality contract between a from-scratch report and a
/// replay-from-checkpoint report over the same trace.
fn assert_reports_agree(scratch: &Report, resumed: &Report, what: &str) {
    assert_eq!(scratch.passed(), resumed.passed(), "{what}: verdicts differ");
    assert_eq!(
        scratch.violation.as_ref().map(|v| v.category()),
        resumed.violation.as_ref().map(|v| v.category()),
        "{what}: violation categories differ\nscratch: {scratch}\nresumed: {resumed}"
    );
    let (a, b) = (&scratch.stats, &resumed.stats);
    assert_eq!(a.events, b.events, "{what}: events");
    assert_eq!(a.commits_applied, b.commits_applied, "{what}: commits");
    assert_eq!(a.methods_completed, b.methods_completed, "{what}: methods");
    assert_eq!(a.observers_checked, b.observers_checked, "{what}: observers");
    assert_eq!(a.view_comparisons, b.view_comparisons, "{what}: view comparisons");
    assert_eq!(a.writes_replayed, b.writes_replayed, "{what}: writes replayed");
    assert_eq!(
        a.lin_windows_searched, b.lin_windows_searched,
        "{what}: lin windows searched"
    );
    assert_eq!(
        a.lin_witness_backtracks, b.lin_witness_backtracks,
        "{what}: lin witness backtracks"
    );
    assert_eq!(a.lin_fastpath_hits, b.lin_fastpath_hits, "{what}: lin fastpath hits");
}

/// Sweeps a few split points (including mid-trace positions certain to
/// bisect in-flight methods) for one scenario/kind/variant combination.
fn roundtrip(scenario: &dyn Scenario, kind: CheckKind, variant: Variant, tag: &str) {
    let run = record_run(scenario, &cfg(), kind.log_mode(), variant);
    let events = run.events;
    assert!(events.len() > 16, "{tag}: trace too small");
    let scratch = check_scratch(scenario, kind, &events);
    let n = events.len();
    // Quarter points bisect in-flight methods; 0 and n are the edges
    // (checkpoint before anything / after everything).
    for split in [n / 4, n / 2, 3 * n / 4, n / 3 + 1, 0, n] {
        let resumed = check_via_checkpoint(scenario, kind, &events, split, tag);
        assert_reports_agree(
            &scratch,
            &resumed,
            &format!("{tag} {variant:?} split {split}/{n}"),
        );
    }
}

#[test]
fn io_checkpoints_round_trip_for_every_scenario_family() {
    for s in scenarios::all() {
        roundtrip(s.as_ref(), CheckKind::Io, Variant::Correct, s.name());
    }
}

#[test]
fn io_checkpoints_preserve_buggy_verdicts() {
    // The buggy variants' violations are interleaving-dependent, so the
    // contract here is *agreement*, not necessarily failure: whatever the
    // scratch checker concluded on this pinned trace, the resumed checker
    // must conclude too — a checkpoint must never mask a violation.
    for s in scenarios::all() {
        roundtrip(
            s.as_ref(),
            CheckKind::Io,
            Variant::Buggy,
            &format!("{}-buggy", s.name()),
        );
    }
}

#[test]
fn view_checkpoints_round_trip_where_the_replayer_supports_them() {
    let s = scenarios::CacheScenario;
    roundtrip(&s, CheckKind::View, Variant::Correct, "Cache-view");
    roundtrip(&s, CheckKind::View, Variant::Buggy, "Cache-view-buggy");

    let s = scenarios::MultisetVectorScenario;
    roundtrip(&s, CheckKind::View, Variant::Correct, "Multiset-Vector-view");
    roundtrip(&s, CheckKind::View, Variant::Buggy, "Multiset-Vector-view-buggy");

    let s = scenarios::MultisetBstScenario;
    roundtrip(&s, CheckKind::View, Variant::Correct, "Multiset-BinaryTree-view");
    roundtrip(&s, CheckKind::View, Variant::Buggy, "Multiset-BinaryTree-view-buggy");
}

#[test]
fn lin_checkpoints_round_trip_with_their_retained_digests() {
    // Lin mode retains per-window observation digests; they must cross
    // the checkpoint boundary so a resumed checker searches exactly the
    // windows — and takes exactly the fast paths — of a from-scratch one.
    for s in scenarios::all().into_iter().chain(scenarios::lockfree()) {
        roundtrip(s.as_ref(), CheckKind::Lin, Variant::Correct, &format!("{}-lin", s.name()));
    }
    for s in scenarios::lockfree() {
        roundtrip(
            s.as_ref(),
            CheckKind::Lin,
            Variant::Buggy,
            &format!("{}-lin-buggy", s.name()),
        );
    }
}
