//! End-to-end witness acceptance: every seeded buggy scenario — the six
//! table families plus both lock-free bugs — must yield a *minimized*
//! counterexample that still FAILs with the identical violation category
//! and object, with the ddmin oracle-run count reported.

use vyrd_core::log::LogMode;
use vyrd_core::witness::ViolationKey;
use vyrd_core::Event;
use vyrd_harness::scenario::{build_witness, record_run, CheckKind, Scenario, Variant};
use vyrd_harness::scenarios;
use vyrd_harness::workload::WorkloadConfig;

fn base_cfg() -> WorkloadConfig {
    WorkloadConfig {
        threads: 4,
        calls_per_thread: 60,
        key_pool: 6,
        shrink_pool: true,
        internal_task: true,
        seed: 7,
        pace: None,
    }
}

/// Keeps re-running the buggy workload with fresh seeds until one trace
/// fails the check, mirroring `detect::measure_detection`'s seed walk.
/// Panics (naming the scenario) if no failure shows up within the
/// budget — every seeded bug is expected to be detectable.
fn failing_trace(
    scenario: &dyn Scenario,
    kind: CheckKind,
    max_runs: u32,
) -> (Vec<Event>, vyrd_core::violation::Report) {
    let mut seed = base_cfg().seed;
    for _ in 0..max_runs {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let cfg = WorkloadConfig {
            seed,
            ..base_cfg()
        };
        let run = record_run(scenario, &cfg, kind.log_mode(), Variant::Buggy);
        let report = scenario.check(kind, run.events.clone());
        if !report.passed() {
            return (run.events, report);
        }
    }
    panic!(
        "{} ({kind:?}): no failing trace in {max_runs} buggy runs",
        scenario.name()
    );
}

fn assert_witness(scenario: &dyn Scenario, kind: CheckKind, max_runs: u32) {
    let name = scenario.name();
    let (events, report) = failing_trace(scenario, kind, max_runs);
    let key = ViolationKey::of(&report, &events).expect("failing report has a key");

    let cx = build_witness(scenario, kind, &events, &report)
        .unwrap_or_else(|e| panic!("{name} ({kind:?}): witness pipeline failed: {e}"));

    // Category and object survive minimization.
    assert_eq!(cx.category, key.category, "{name} ({kind:?}) category drifted");
    assert_eq!(cx.object, key.object, "{name} ({kind:?}) object drifted");

    // The minimized trace is a genuine counterexample: re-checking it
    // from scratch still fails with the same category.
    let minimized = cx.minimized_events();
    assert!(!minimized.is_empty(), "{name}: empty witness");
    assert!(
        minimized.len() <= events.len(),
        "{name}: witness grew ({} -> {})",
        events.len(),
        minimized.len()
    );
    let re = scenario.check(kind, minimized.clone());
    let re_key = ViolationKey::of(&re, &minimized)
        .unwrap_or_else(|| panic!("{name} ({kind:?}): minimized trace passes"));
    assert_eq!(re_key.category, key.category, "{name}: re-check category drifted");

    // The oracle-run count is reported — both as a field and in the
    // rendered explanation's minimization line.
    assert!(cx.oracle_runs >= 1, "{name}: no oracle runs recorded");
    assert!(
        cx.explanation.contains("oracle runs"),
        "{name}: explanation lacks the minimization cost line:\n{}",
        cx.explanation
    );
    assert!(
        cx.explanation.contains(name),
        "{name}: explanation does not name the scenario"
    );
}

#[test]
fn multiset_vector_view_witness() {
    assert_witness(&scenarios::MultisetVectorScenario, CheckKind::View, 60);
}

#[test]
fn multiset_bst_view_witness() {
    assert_witness(&scenarios::MultisetBstScenario, CheckKind::View, 60);
}

#[test]
fn java_vector_view_witness() {
    assert_witness(&scenarios::JavaVectorScenario, CheckKind::View, 60);
}

#[test]
fn string_buffer_view_witness() {
    assert_witness(&scenarios::StringBufferScenario, CheckKind::View, 60);
}

#[test]
fn blink_tree_view_witness() {
    assert_witness(&scenarios::BLinkTreeScenario, CheckKind::View, 60);
}

#[test]
fn cache_view_witness() {
    assert_witness(&scenarios::CacheScenario, CheckKind::View, 60);
}

#[test]
fn treiber_stack_lin_witness() {
    assert_witness(&scenarios::TreiberStackScenario, CheckKind::Lin, 10);
}

#[test]
fn ms_queue_lin_witness() {
    assert_witness(&scenarios::MsQueueScenario, CheckKind::Lin, 10);
}

/// Witnesses are never produced from reports the checker itself flagged
/// as unreliable, and never from passing reports — the error paths of
/// the pipeline, exercised through the harness entry point.
#[test]
fn witness_refuses_passing_and_mismatched_reports() {
    let s = scenarios::TreiberStackScenario;
    let cfg = base_cfg();
    let run = record_run(&s, &cfg, LogMode::Io, Variant::Correct);
    let report = s.check(CheckKind::Lin, run.events.clone());
    assert!(report.passed(), "correct stack must pass lin: {report}");
    let err = build_witness(&s, CheckKind::Lin, &run.events, &report);
    assert!(
        matches!(err, Err(vyrd_core::witness::WitnessError::Passed)),
        "passing report must not produce a witness: {err:?}"
    );
}
