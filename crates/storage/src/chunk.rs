//! The Chunk Manager: Boxwood's data-store abstraction (§7.2, Fig. 10).
//!
//! "Each shared variable is a byte-array identified by a unique handle, and
//! is stored and managed by the Chunk Manager module. Shared variables have
//! version numbers that are incremented after each write."
//!
//! The paper *assumes* the Chunk Manager is implemented correctly and
//! verifies the Cache (+BLinkTree) on top of it; this module is that
//! assumed-correct substrate: a straightforward, fully synchronized
//! versioned byte-array store.

use std::collections::HashMap;
use std::sync::Arc;

use vyrd_rt::sync::Mutex;

/// A stored byte array plus its version number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Chunk {
    /// Current contents.
    pub data: Vec<u8>,
    /// Number of writes this handle has received.
    pub version: u64,
}

/// The versioned byte-array store.
///
/// # Examples
///
/// ```
/// use vyrd_storage::ChunkManager;
///
/// let cm = ChunkManager::new();
/// cm.write(7, vec![1, 2, 3]);
/// assert_eq!(cm.read(7).unwrap().data, vec![1, 2, 3]);
/// assert_eq!(cm.read(7).unwrap().version, 1);
/// cm.write(7, vec![4]);
/// assert_eq!(cm.read(7).unwrap().version, 2);
/// assert!(cm.read(8).is_none());
/// ```
#[derive(Clone, Debug, Default)]
pub struct ChunkManager {
    chunks: Arc<Mutex<HashMap<i64, Chunk>>>,
}

impl ChunkManager {
    /// Creates an empty store.
    pub fn new() -> ChunkManager {
        ChunkManager::default()
    }

    /// Writes `data` to `handle`, incrementing its version.
    pub fn write(&self, handle: i64, data: Vec<u8>) {
        let mut chunks = self.chunks.lock();
        let chunk = chunks.entry(handle).or_insert(Chunk {
            data: Vec::new(),
            version: 0,
        });
        chunk.data = data;
        chunk.version += 1;
    }

    /// Reads the chunk stored at `handle`.
    pub fn read(&self, handle: i64) -> Option<Chunk> {
        self.chunks.lock().get(&handle).cloned()
    }

    /// Number of stored handles.
    pub fn len(&self) -> usize {
        self.chunks.lock().len()
    }

    /// `true` if nothing has been stored.
    pub fn is_empty(&self) -> bool {
        self.chunks.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_increment_per_write() {
        let cm = ChunkManager::new();
        cm.write(1, vec![0]);
        cm.write(1, vec![1]);
        cm.write(2, vec![2]);
        assert_eq!(cm.read(1).unwrap().version, 2);
        assert_eq!(cm.read(2).unwrap().version, 1);
        assert_eq!(cm.len(), 2);
        assert!(!cm.is_empty());
    }

    #[test]
    fn clones_share_storage() {
        let cm = ChunkManager::new();
        let cm2 = cm.clone();
        cm.write(5, vec![9]);
        assert_eq!(cm2.read(5).unwrap().data, vec![9]);
    }

    #[test]
    fn concurrent_writes_are_serialized() {
        let cm = ChunkManager::new();
        let mut handles = Vec::new();
        for t in 0..4 {
            let cm = cm.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    cm.write(t % 2, vec![i as u8]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            cm.read(0).unwrap().version + cm.read(1).unwrap().version,
            400
        );
    }
}
