//! # vyrd-storage — the Boxwood storage stack (§7.2, Figs. 8 & 10)
//!
//! The modules of Boxwood the paper verifies, rebuilt in Rust:
//!
//! * [`ChunkManager`] — the assumed-correct versioned byte-array store;
//! * [`BoxCache`] — the Cache of Fig. 8 (clean/dirty lists, `LOCK(clean)`,
//!   `RECLAIMLOCK`, three WRITE commit points, FLUSH, REVOKE), with the
//!   real §7.2.2 bug reproducible via [`CacheVariant::Buggy`];
//! * [`StoreSpec`] — the abstract data store the combination must refine;
//! * [`CacheReplayer`] with the §7.2.1 invariants
//!   [`clean_matches_chunk`] and [`entry_in_exactly_one_list`].
//!
//! ```
//! use vyrd_core::checker::Checker;
//! use vyrd_core::log::{EventLog, LogMode};
//! use vyrd_storage::{
//!     clean_matches_chunk, BoxCache, CacheReplayer, CacheVariant, ChunkManager, StoreSpec,
//! };
//!
//! let log = EventLog::in_memory(LogMode::View);
//! let cache = BoxCache::new(ChunkManager::new(), CacheVariant::Correct, log.clone());
//! let h = cache.handle();
//! h.write(1, vec![1, 2, 3]);
//! h.flush();
//!
//! let report = Checker::view(StoreSpec::new(), CacheReplayer::new())
//!     .with_invariant(clean_matches_chunk())
//!     .check_events(log.snapshot());
//! assert!(report.passed());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod cache;
mod chunk;
mod spec;

pub use cache::{BoxCache, BoxCacheHandle, CacheVariant};
pub use chunk::{Chunk, ChunkManager};
pub use spec::{
    clean_matches_chunk, entry_in_exactly_one_list, CacheReplayer, ReplayedEntryState, StoreSpec,
};

#[cfg(test)]
mod tests {
    use super::*;
    use vyrd_core::checker::Checker;
    use vyrd_core::log::{EventLog, LogMode};
    use vyrd_core::violation::Report;

    fn view_log() -> EventLog {
        EventLog::in_memory(LogMode::View)
    }

    fn check_io(log: &EventLog) -> Report {
        Checker::io(StoreSpec::new()).check_events(log.snapshot())
    }

    fn check_view(log: &EventLog) -> Report {
        Checker::view(StoreSpec::new(), CacheReplayer::new())
            .with_invariant(clean_matches_chunk())
            .with_invariant(entry_in_exactly_one_list())
            .check_events(log.snapshot())
    }

    fn cache(variant: CacheVariant, log: &EventLog) -> BoxCache {
        BoxCache::new(ChunkManager::new(), variant, log.clone())
    }

    #[test]
    fn sequential_write_read_flush_revoke() {
        let log = view_log();
        let c = cache(CacheVariant::Correct, &log);
        let h = c.handle();
        assert!(h.read(1).is_unit());
        h.write(1, vec![1, 2, 3]);
        assert_eq!(h.read(1).as_bytes(), Some(&[1u8, 2, 3][..]));
        h.flush();
        assert_eq!(c.chunk_manager().read(1).unwrap().data, vec![1, 2, 3]);
        h.revoke(1);
        assert_eq!(h.read(1).as_bytes(), Some(&[1u8, 2, 3][..]));
        // Overwrite through the hit paths: clean hit, then dirty hit.
        h.write(1, vec![4; 20]);
        h.write(1, vec![5; 20]);
        assert_eq!(h.read(1).as_bytes(), Some(&[5u8; 20][..]));
        assert!(check_io(&log).passed());
        let view = check_view(&log);
        assert!(view.passed(), "view: {view}");
    }

    #[test]
    fn revoke_of_dirty_entry_writes_back() {
        let log = view_log();
        let c = cache(CacheVariant::Correct, &log);
        let h = c.handle();
        h.write(2, vec![9; 10]);
        h.revoke(2);
        assert_eq!(c.chunk_manager().read(2).unwrap().data, vec![9; 10]);
        assert_eq!(h.read(2).as_bytes(), Some(&[9u8; 10][..]));
        assert!(check_view(&log).passed());
    }

    #[test]
    fn concurrent_correct_run_passes_with_flusher() {
        let log = view_log();
        let c = cache(CacheVariant::Correct, &log);
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flusher = {
            let c = c.clone();
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                let h = c.handle();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    h.flush();
                    std::thread::yield_now();
                }
            })
        };
        let mut workers = Vec::new();
        for t in 0..4u8 {
            let h = c.handle();
            workers.push(std::thread::spawn(move || {
                for i in 0..40u8 {
                    let handle = i64::from(i % 5);
                    match i % 3 {
                        0 | 1 => h.write(handle, vec![t.wrapping_mul(40).wrapping_add(i); 24]),
                        _ => {
                            h.read(handle);
                        }
                    }
                }
            }));
        }
        for w in workers {
            w.join().unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        flusher.join().unwrap();
        let io = check_io(&log);
        assert!(io.passed(), "io: {io}");
        let view = check_view(&log);
        assert!(view.passed(), "view: {view}");
    }

    #[test]
    fn the_722_bug_is_caught_by_the_invariant() {
        // One thread repeatedly overwrites a dirty entry in place (path 3)
        // while another flushes: in the buggy variant a torn buffer
        // reaches the chunk manager and the entry is marked clean.
        for _ in 0..300 {
            let log = view_log();
            let c = cache(CacheVariant::Buggy, &log);
            let seed = c.handle();
            seed.write(1, vec![0; 64]); // dirty entry exists
            let writer = {
                let c = c.clone();
                std::thread::spawn(move || {
                    let h = c.handle();
                    for round in 1..=4u8 {
                        h.write(1, vec![round; 64]); // path 3, unprotected
                    }
                })
            };
            let flusher = {
                let c = c.clone();
                std::thread::spawn(move || {
                    let h = c.handle();
                    for _ in 0..4 {
                        h.flush();
                        std::thread::yield_now();
                    }
                })
            };
            writer.join().unwrap();
            flusher.join().unwrap();
            let view = check_view(&log);
            if !view.passed() {
                let v = view.violation.unwrap();
                assert!(
                    v.is_view_only(),
                    "expected a view/invariant violation, got {v}"
                );
                return;
            }
        }
        panic!("the cache race never manifested in 300 attempts");
    }

    #[test]
    fn the_722_bug_reaches_io_refinement_only_after_eviction_and_read() {
        // Reproduce the paper's scenario end to end: torn flush -> entry
        // evicted while "clean" -> read faults the corrupted chunk back in
        // and returns it -> the Read observation is unjustified.
        for _ in 0..300 {
            let log = view_log();
            let c = cache(CacheVariant::Buggy, &log);
            let seed = c.handle();
            seed.write(1, vec![0; 64]);
            let writer = {
                let c = c.clone();
                std::thread::spawn(move || {
                    let h = c.handle();
                    h.write(1, vec![7; 64]);
                })
            };
            let flusher = {
                let c = c.clone();
                std::thread::spawn(move || {
                    let h = c.handle();
                    h.flush();
                })
            };
            writer.join().unwrap();
            flusher.join().unwrap();
            // Quiescent now. If the chunk got corrupted, it differs from
            // both the old and the new buffer; evict and re-read to
            // surface it.
            let h = c.handle();
            h.revoke(1);
            h.read(1);
            let io = check_io(&log);
            let stored = c.chunk_manager().read(1).unwrap().data;
            let torn = stored != vec![7; 64] && stored != vec![0; 64];
            if torn {
                assert!(!io.passed(), "chunk is torn but I/O refinement passed");
                assert_eq!(io.violation.unwrap().category(), "observer-unjustified");
                return;
            }
        }
        panic!("the cache race never manifested in 300 attempts");
    }
}
