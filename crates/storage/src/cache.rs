//! The Boxwood Cache module (Fig. 8, §7.2.1–§7.2.2).
//!
//! The cache sits between clients (the B-link tree) and the
//! [`ChunkManager`]: it holds *clean* entries (known equal to the chunk
//! store) and *dirty* entries (newer than the chunk store). One lock —
//! `LOCK(clean)` in the pseudocode — protects both lists; a read–write
//! `RECLAIMLOCK` serializes reclamation (eviction/revocation) against
//! ordinary operations.
//!
//! `WRITE(handle, buffer)` has the three paths of Fig. 8 with their three
//! commit points:
//!
//! 1. miss → make a private entry, copy, **add to the dirty list**;
//! 2. clean hit → remove from clean, copy, **add to the dirty list**;
//! 3. dirty hit → **copy in place**.
//!
//! The §7.2.2 bug lives in path 3: the in-place `COPY-TO-CACHE` "not being
//! protected by the proper lock (`LOCK(clean)`)". A concurrent `FLUSH`
//! (which *does* hold `LOCK(clean)`) can then read the entry mid-copy and
//! write a buffer that is "partly old and partly new" to the Chunk
//! Manager — after which the entry is marked clean although it does not
//! match the stored chunk. [`CacheVariant::Buggy`] reproduces exactly
//! this; the copy is chunked with yield points so the race manifests
//! readily.

use std::collections::HashMap;
use std::sync::Arc;

use vyrd_rt::sync::{Mutex, RwLock};
use vyrd_core::instrument::{BlockGuard, MethodSession};
use vyrd_core::log::{EventLog, ThreadLogger};
use vyrd_core::{Value, VarId};

use crate::chunk::ChunkManager;

/// Which `WRITE` path-3 protection to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CacheVariant {
    /// The in-place copy holds `LOCK(clean)`, excluding flushes.
    #[default]
    Correct,
    /// §7.2.2: the in-place copy is unprotected — a concurrent flush can
    /// persist a torn buffer and mark the entry clean.
    Buggy,
}

/// How many bytes `COPY-TO-CACHE` moves per step; each step is a separate
/// lock acquisition with a yield in between, so a racing flush can observe
/// a partially updated buffer (in the buggy variant).
const COPY_CHUNK: usize = 8;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    Clean,
    Dirty,
}

#[derive(Debug)]
struct CacheEntry {
    /// Retained for diagnostics (Debug output) when dumping cache state.
    #[allow(dead_code)]
    handle: i64,
    data: Mutex<Vec<u8>>,
}

#[derive(Debug, Default)]
struct Lists {
    /// handle -> (entry, which list). One map with a state tag keeps
    /// invariant (ii) ("an entry is in either the clean or dirty list")
    /// structurally true in the implementation; the *replayed* state can
    /// still violate it if the log shows otherwise.
    entries: HashMap<i64, (Arc<CacheEntry>, EntryState)>,
}

#[derive(Debug)]
struct Inner {
    chunk_mgr: ChunkManager,
    /// `LOCK(clean)` of Fig. 8.
    lists: Mutex<Lists>,
    /// `RECLAIMLOCK` of Fig. 8.
    reclaim: RwLock<()>,
    variant: CacheVariant,
    log: EventLog,
}

/// The Boxwood cache over a [`ChunkManager`].
///
/// # Examples
///
/// ```
/// use vyrd_core::log::{EventLog, LogMode};
/// use vyrd_storage::{BoxCache, CacheVariant, ChunkManager};
///
/// let log = EventLog::in_memory(LogMode::Io);
/// let cache = BoxCache::new(ChunkManager::new(), CacheVariant::Correct, log);
/// let h = cache.handle();
/// h.write(1, vec![1, 2, 3]);
/// assert_eq!(h.read(1).as_bytes(), Some(&[1, 2, 3][..]));
/// h.flush();
/// h.revoke(1);
/// assert_eq!(h.read(1).as_bytes(), Some(&[1, 2, 3][..])); // refetched
/// ```
#[derive(Clone, Debug)]
pub struct BoxCache {
    inner: Arc<Inner>,
}

impl BoxCache {
    /// Creates a cache over `chunk_mgr`.
    pub fn new(chunk_mgr: ChunkManager, variant: CacheVariant, log: EventLog) -> BoxCache {
        BoxCache {
            inner: Arc::new(Inner {
                chunk_mgr,
                lists: Mutex::new(Lists::default()),
                reclaim: RwLock::new(()),
                variant,
                log,
            }),
        }
    }

    /// The underlying chunk store.
    pub fn chunk_manager(&self) -> &ChunkManager {
        &self.inner.chunk_mgr
    }

    /// The event log this cache records into.
    pub fn log(&self) -> &EventLog {
        &self.inner.log
    }

    /// Creates a per-thread handle with a fresh thread id.
    pub fn handle(&self) -> BoxCacheHandle {
        BoxCacheHandle {
            cache: self.clone(),
            logger: self.inner.log.logger(),
        }
    }
}

/// Per-thread access to a [`BoxCache`].
#[derive(Clone, Debug)]
pub struct BoxCacheHandle {
    cache: BoxCache,
    logger: ThreadLogger,
}

impl BoxCacheHandle {
    fn inner(&self) -> &Inner {
        &self.cache.inner
    }

    /// `COPY-TO-CACHE` (Fig. 8): byte-wise in-place overwrite of the entry
    /// buffer, in small locked steps.
    fn copy_to_cache(&self, entry: &CacheEntry, buffer: &[u8]) {
        let mut offset = 0;
        while offset < buffer.len() {
            let end = (offset + COPY_CHUNK).min(buffer.len());
            {
                let mut data = entry.data.lock();
                if data.len() < buffer.len() {
                    data.resize(buffer.len(), 0);
                }
                data[offset..end].copy_from_slice(&buffer[offset..end]);
                if end == buffer.len() {
                    data.truncate(buffer.len());
                }
            }
            offset = end;
            std::thread::yield_now();
        }
        if buffer.is_empty() {
            entry.data.lock().clear();
        }
    }

    fn log_entry_state(&self, handle: i64, state: &str) {
        self.logger
            .write(VarId::new("cache.state", handle), Value::from(state));
    }

    fn log_entry_content(&self, handle: i64, content: &[u8]) {
        self.logger
            .write(VarId::new("cache", handle), Value::from(content));
    }

    fn log_chunk(&self, handle: i64, content: &[u8]) {
        self.logger
            .write(VarId::new("chunk", handle), Value::from(content));
    }

    /// `WRITE(handle, buffer)` (Fig. 8): stores `buffer` as the current
    /// contents of `handle`, through the cache.
    pub fn write(&self, handle: i64, buffer: Vec<u8>) {
        let args = [Value::from(handle), Value::from(buffer.as_slice())];
        let mut session = MethodSession::enter(&self.logger, "Write", &args);
        let _reclaim = self.inner().reclaim.read();
        match self.inner().variant {
            CacheVariant::Correct => self.write_correct(handle, &buffer, &mut session),
            CacheVariant::Buggy => self.write_buggy(handle, &buffer, &mut session),
        }
        session.exit(Value::Unit);
    }

    /// The fixed WRITE: every hit path re-validates and copies under
    /// `LOCK(clean)` and leaves the entry dirty, so a flush can neither
    /// observe a mid-copy buffer nor leave a stale-clean entry behind.
    fn write_correct(&self, handle: i64, buffer: &[u8], session: &mut MethodSession<'_>) {
        // Path 1's copy happens outside LOCK(clean) into a private entry,
        // as in Fig. 8 lines 9–11.
        let fresh = {
            let lists = self.inner().lists.lock();
            !lists.entries.contains_key(&handle)
        };
        let private = if fresh {
            let entry = Arc::new(CacheEntry {
                handle,
                data: Mutex::new(Vec::new()),
            });
            self.copy_to_cache(&entry, buffer);
            Some(entry)
        } else {
            None
        };
        let mut lists = self.inner().lists.lock();
        // Re-validate under the lock and act on what is true *now*.
        match (lists.entries.get(&handle).cloned(), private) {
            (None, Some(entry)) => {
                // Path 1 (lines 12–14): publish the private entry dirty.
                let block = BlockGuard::enter(&self.logger);
                lists.entries.insert(handle, (entry, EntryState::Dirty));
                self.log_entry_content(handle, buffer);
                self.log_entry_state(handle, "dirty");
                session.commit(); // Commit point 1
                drop(block);
            }
            (None, None) => {
                // The entry vanished (revoked) between the probe and the
                // lock: fall back to a locked copy into a fresh entry.
                let entry = Arc::new(CacheEntry {
                    handle,
                    data: Mutex::new(buffer.to_vec()),
                });
                let block = BlockGuard::enter(&self.logger);
                lists.entries.insert(handle, (entry, EntryState::Dirty));
                self.log_entry_content(handle, buffer);
                self.log_entry_state(handle, "dirty");
                session.commit();
                drop(block);
            }
            (Some((entry, _)), _) => {
                // Paths 2 and 3 unified: copy in place under LOCK(clean)
                // and (re-)mark dirty.
                self.copy_to_cache(&entry, buffer);
                let block = BlockGuard::enter(&self.logger);
                lists.entries.insert(handle, (entry, EntryState::Dirty));
                self.log_entry_content(handle, buffer);
                self.log_entry_state(handle, "dirty");
                session.commit(); // Commit points 2/3
                drop(block);
            }
        }
    }

    /// The Fig. 8 WRITE verbatim, including the §7.2.2 bug: path
    /// classification uses a *stale* probe, and the path-3 in-place copy
    /// runs without `LOCK(clean)`.
    fn write_buggy(&self, handle: i64, buffer: &[u8], session: &mut MethodSession<'_>) {
        // Fig. 8 lines 2–5: consult the lists, then UNLOCK(clean).
        let existing = {
            let lists = self.inner().lists.lock();
            lists.entries.get(&handle).cloned()
        };
        match existing {
            None => {
                // Path 1 (lines 7–14).
                let entry = Arc::new(CacheEntry {
                    handle,
                    data: Mutex::new(Vec::new()),
                });
                self.copy_to_cache(&entry, buffer);
                let mut lists = self.inner().lists.lock();
                let block = BlockGuard::enter(&self.logger);
                lists.entries.insert(handle, (entry, EntryState::Dirty));
                self.log_entry_content(handle, buffer);
                self.log_entry_state(handle, "dirty");
                session.commit(); // Commit point 1
                drop(block);
            }
            Some((entry, EntryState::Clean)) => {
                // Path 2 (lines 16–21): under LOCK(clean).
                let mut lists = self.inner().lists.lock();
                self.copy_to_cache(&entry, buffer);
                let block = BlockGuard::enter(&self.logger);
                lists.entries.insert(handle, (entry, EntryState::Dirty));
                self.log_entry_content(handle, buffer);
                self.log_entry_state(handle, "dirty");
                session.commit(); // Commit point 2
                drop(block);
            }
            Some((entry, EntryState::Dirty)) => {
                // Path 3 (line 23). BUG: "the call to COPY-TO-CACHE in
                // line 23 [is] not protected by the proper lock
                // (LOCK(clean))" — a flush can interleave with the chunked
                // copy and persist a torn buffer.
                self.copy_to_cache(&entry, buffer);
                let block = BlockGuard::enter(&self.logger);
                self.log_entry_content(handle, buffer);
                session.commit(); // Commit point 3
                drop(block);
            }
        }
    }

    /// `READ(handle)`: the current contents of `handle` (cache first, then
    /// chunk store, faulting the chunk in as a clean entry). Observer.
    /// Returns [`Value::Unit`] for a handle never written.
    pub fn read(&self, handle: i64) -> Value {
        let session = MethodSession::enter(&self.logger, "Read", &[Value::from(handle)]);
        let _reclaim = self.inner().reclaim.read();
        let ret = {
            let mut lists = self.inner().lists.lock();
            match lists.entries.get(&handle) {
                Some((entry, _)) => Value::from(entry.data.lock().clone()),
                None => match self.inner().chunk_mgr.read(handle) {
                    Some(chunk) => {
                        // Fault in as a clean entry. This preserves the
                        // view (entry content == chunk content), so READ
                        // stays an observer.
                        let entry = Arc::new(CacheEntry {
                            handle,
                            data: Mutex::new(chunk.data.clone()),
                        });
                        lists.entries.insert(handle, (entry, EntryState::Clean));
                        // The two log records are bracketed as a block so
                        // the replayed entry never transiently exists with
                        // contents but no list (invariant (ii)).
                        let block = BlockGuard::enter(&self.logger);
                        self.log_entry_content(handle, &chunk.data);
                        self.log_entry_state(handle, "clean");
                        drop(block);
                        Value::from(chunk.data)
                    }
                    None => Value::Unit,
                },
            }
        };
        session.exit(ret)
    }

    /// `FLUSH()` (Fig. 8): writes every dirty entry to the chunk manager
    /// and moves it to the clean list. Holds `LOCK(clean)` throughout;
    /// the commit point is the end of the method.
    pub fn flush(&self) {
        let mut session = MethodSession::enter(&self.logger, "Flush", &[]);
        {
            let mut lists = self.inner().lists.lock();
            let block = BlockGuard::enter(&self.logger);
            let handles: Vec<i64> = lists
                .entries
                .iter()
                .filter(|(_, (_, s))| *s == EntryState::Dirty)
                .map(|(&h, _)| h)
                .collect();
            for handle in handles {
                let (entry, _) = lists.entries.get(&handle).expect("listed above").clone();
                // BOXWOOD-ALLOCATOR-WRITE: read whatever is in the buffer
                // *now* — in the buggy variant this can be mid-copy.
                let snapshot = entry.data.lock().clone();
                self.inner().chunk_mgr.write(handle, snapshot.clone());
                self.log_chunk(handle, &snapshot);
                // REMOVE-FROM-DIRTY-LIST / ADD-TO-CLEAN-LIST.
                lists.entries.insert(handle, (entry, EntryState::Clean));
                self.log_entry_state(handle, "clean");
            }
            session.commit(); // Fig. 8 FLUSH commit point
            drop(block);
        }
        session.exit(Value::Unit);
    }

    /// `REVOKE(handle)` (§7.2.1's "revoke method"): writes the single
    /// entry back to the chunk manager if dirty, then drops it from the
    /// cache. Takes the reclaim lock exclusively.
    pub fn revoke(&self, handle: i64) {
        let mut session = MethodSession::enter(&self.logger, "Revoke", &[Value::from(handle)]);
        {
            let _reclaim = self.inner().reclaim.write();
            let mut lists = self.inner().lists.lock();
            let block = BlockGuard::enter(&self.logger);
            if let Some((entry, state)) = lists.entries.remove(&handle) {
                if state == EntryState::Dirty {
                    let snapshot = entry.data.lock().clone();
                    self.inner().chunk_mgr.write(handle, snapshot.clone());
                    self.log_chunk(handle, &snapshot);
                }
                // An entry "believed clean" is dropped without write-back —
                // this is what lets the §7.2.2 corruption reach READ.
                self.log_entry_content(handle, &[]);
                self.log_entry_state(handle, "absent");
            }
            session.commit();
            drop(block);
        }
        session.exit(Value::Unit);
    }
}
