//! Specification and replayer for the Cache + Chunk Manager combination
//! (§7.2.1).
//!
//! The abstract data store is a map `handle -> byte-array`; `Write`
//! installs a value, `Read` observes it, `Flush` and `Revoke` are internal
//! mutators whose specification transitions leave the store unchanged.
//!
//! `view_I` follows §7.2.1: "for each handle, if there exists a cache
//! entry associated with handle, byte-array is taken from the cache entry,
//! otherwise, it is taken from Chunk Manager."
//!
//! The two runtime-checked invariants of §7.2.1 are provided as
//! [`Invariant`]s over the replayed state:
//!
//! 1. [`clean_matches_chunk`] — "if a clean cache entry exists for handle,
//!    Cache and Chunk Manager must contain the same corresponding
//!    byte-array" (the one the §7.2.2 bug violates);
//! 2. [`entry_in_exactly_one_list`] — "a cache entry must be in either the
//!    clean or dirty entries list".

use std::collections::{BTreeSet, HashMap};

use vyrd_core::checker::Invariant;
use vyrd_core::replay::Replayer;
use vyrd_core::spec::{MethodKind, Spec, SpecEffect, SpecError};
use vyrd_core::view::View;
use vyrd_core::{MethodId, Value};

/// Atomic specification of the abstract data store.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StoreSpec {
    store: std::collections::BTreeMap<i64, Vec<u8>>,
}

impl StoreSpec {
    /// Creates an empty store specification.
    pub fn new() -> StoreSpec {
        StoreSpec::default()
    }

    /// Current abstract contents of `handle`.
    pub fn get(&self, handle: i64) -> Option<&[u8]> {
        self.store.get(&handle).map(Vec::as_slice)
    }
}

impl Spec for StoreSpec {
    fn kind(&self, method: &MethodId) -> MethodKind {
        match method.name() {
            "Write" | "Flush" | "Revoke" => MethodKind::Mutator,
            _ => MethodKind::Observer,
        }
    }

    fn apply(
        &mut self,
        method: &MethodId,
        args: &[Value],
        ret: &Value,
    ) -> Result<SpecEffect, SpecError> {
        match method.name() {
            "Write" => {
                let handle = args
                    .first()
                    .and_then(Value::as_int)
                    .ok_or_else(|| SpecError::new("Write takes a handle"))?;
                let data = args
                    .get(1)
                    .and_then(Value::as_bytes)
                    .ok_or_else(|| SpecError::new("Write takes a byte buffer"))?;
                self.store.insert(handle, data.to_vec());
                Ok(SpecEffect::touching([handle]))
            }
            "Flush" | "Revoke" => {
                if ret.is_unit() {
                    Ok(SpecEffect::unchanged())
                } else {
                    Err(SpecError::new(format!(
                        "{} returns unit, not {ret}",
                        method.name()
                    )))
                }
            }
            other => Err(SpecError::new(format!("unknown mutator {other}"))),
        }
    }

    fn accepts_observation(&self, method: &MethodId, args: &[Value], ret: &Value) -> bool {
        if method.name() != "Read" {
            return false;
        }
        let Some(handle) = args.first().and_then(Value::as_int) else {
            return false;
        };
        match self.store.get(&handle) {
            Some(data) => ret.as_bytes() == Some(data.as_slice()),
            None => ret.is_unit(),
        }
    }

    fn view(&self) -> View {
        self.store
            .iter()
            .map(|(&h, data)| (Value::from(h), Value::from(data.as_slice())))
            .collect()
    }

    fn view_of(&self, key: &Value) -> Option<Value> {
        self.store
            .get(&key.as_int()?)
            .map(|data| Value::from(data.as_slice()))
    }

    fn save_state(&self) -> Option<Value> {
        Some(Value::List(
            self.store
                .iter()
                .map(|(&h, data)| Value::pair(Value::from(h), Value::from(data.as_slice())))
                .collect(),
        ))
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), SpecError> {
        let entries = state
            .as_list()
            .ok_or_else(|| SpecError::new("store state must be a list"))?;
        let mut store = std::collections::BTreeMap::new();
        for entry in entries {
            let (h, data) = entry
                .as_pair()
                .and_then(|(h, data)| Some((h.as_int()?, data.as_bytes()?.to_vec())))
                .ok_or_else(|| SpecError::new("store entry must be a (handle, bytes) pair"))?;
            store.insert(h, data);
        }
        self.store = store;
        Ok(())
    }
}

/// Where a replayed cache entry currently lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplayedEntryState {
    /// In the clean list.
    Clean,
    /// In the dirty list.
    Dirty,
}

/// Shadow state for the Cache + Chunk Manager combination.
///
/// Variables: `cache[h]` (entry contents), `cache.state[h]`
/// (`"clean"`/`"dirty"`/`"absent"`), `chunk[h]` (chunk-store contents).
#[derive(Debug, Default)]
pub struct CacheReplayer {
    chunks: HashMap<i64, Vec<u8>>,
    entries: HashMap<i64, (Vec<u8>, Option<ReplayedEntryState>)>,
    dirty: BTreeSet<i64>,
}

impl CacheReplayer {
    /// Creates an empty shadow state.
    pub fn new() -> CacheReplayer {
        CacheReplayer::default()
    }

    /// The replayed chunk-store contents for `handle`.
    pub fn chunk(&self, handle: i64) -> Option<&[u8]> {
        self.chunks.get(&handle).map(Vec::as_slice)
    }

    /// The replayed cache entry for `handle`: its contents and list.
    pub fn entry(&self, handle: i64) -> Option<(&[u8], ReplayedEntryState)> {
        match self.entries.get(&handle) {
            Some((data, Some(state))) => Some((data.as_slice(), *state)),
            _ => None,
        }
    }

    /// Iterates over `(handle, contents, state)` of all live cache
    /// entries.
    pub fn live_entries(&self) -> impl Iterator<Item = (i64, &[u8], ReplayedEntryState)> {
        self.entries.iter().filter_map(|(&h, (data, state))| {
            state.map(|s| (h, data.as_slice(), s))
        })
    }

    /// Handles whose entry has recorded contents but belongs to no list —
    /// the condition invariant (ii) forbids.
    pub fn orphaned_entries(&self) -> Vec<i64> {
        self.entries
            .iter()
            .filter(|(_, (data, state))| state.is_none() && !data.is_empty())
            .map(|(&h, _)| h)
            .collect()
    }
}

impl Replayer for CacheReplayer {
    fn apply_write(&mut self, var: &VarId, value: &Value) {
        let handle = var.index();
        match var.space() {
            "chunk" => {
                self.chunks
                    .insert(handle, value.as_bytes().unwrap_or_default().to_vec());
                self.dirty.insert(handle);
            }
            "cache" => {
                let entry = self.entries.entry(handle).or_insert((Vec::new(), None));
                entry.0 = value.as_bytes().unwrap_or_default().to_vec();
                self.dirty.insert(handle);
            }
            "cache.state" => {
                let state = match value.as_str() {
                    Some("clean") => Some(ReplayedEntryState::Clean),
                    Some("dirty") => Some(ReplayedEntryState::Dirty),
                    _ => None,
                };
                let entry = self.entries.entry(handle).or_insert((Vec::new(), None));
                entry.1 = state;
                if state.is_none() {
                    entry.0.clear();
                }
                self.dirty.insert(handle);
            }
            other => panic!("CacheReplayer: unknown variable space {other:?}"),
        }
    }

    fn view(&self) -> View {
        let handles: BTreeSet<i64> = self
            .chunks
            .keys()
            .chain(self.entries.keys())
            .copied()
            .collect();
        handles
            .into_iter()
            .filter_map(|h| self.view_of(&Value::from(h)).map(|v| (Value::from(h), v)))
            .collect()
    }

    fn view_of(&self, key: &Value) -> Option<Value> {
        let h = key.as_int()?;
        // §7.2.1: the cache entry wins; otherwise the chunk store.
        if let Some((data, state)) = self.entries.get(&h) {
            if state.is_some() {
                return Some(Value::from(data.as_slice()));
            }
        }
        self.chunks.get(&h).map(|d| Value::from(d.as_slice()))
    }

    fn take_dirty(&mut self) -> Option<Vec<Value>> {
        Some(
            std::mem::take(&mut self.dirty)
                .into_iter()
                .map(Value::from)
                .collect(),
        )
    }

    fn save_state(&self) -> Option<Value> {
        let mut chunks: Vec<_> = self.chunks.iter().collect();
        chunks.sort_by_key(|(&h, _)| h);
        let mut entries: Vec<_> = self.entries.iter().collect();
        entries.sort_by_key(|(&h, _)| h);
        Some(Value::List(vec![
            Value::List(
                chunks
                    .into_iter()
                    .map(|(&h, data)| Value::pair(Value::from(h), Value::from(data.as_slice())))
                    .collect(),
            ),
            Value::List(
                entries
                    .into_iter()
                    .map(|(&h, (data, state))| {
                        let state = match state {
                            None => 0i64,
                            Some(ReplayedEntryState::Clean) => 1,
                            Some(ReplayedEntryState::Dirty) => 2,
                        };
                        Value::List(vec![
                            Value::from(h),
                            Value::from(data.as_slice()),
                            Value::from(state),
                        ])
                    })
                    .collect(),
            ),
            Value::List(self.dirty.iter().map(|&h| Value::from(h)).collect()),
        ]))
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), SpecError> {
        let malformed = || SpecError::new("malformed cache-replayer state");
        let parts = state.as_list().ok_or_else(malformed)?;
        let [chunks_v, entries_v, dirty_v] = parts else {
            return Err(malformed());
        };
        let mut chunks = HashMap::new();
        for entry in chunks_v.as_list().ok_or_else(malformed)? {
            let (h, data) = entry
                .as_pair()
                .and_then(|(h, data)| Some((h.as_int()?, data.as_bytes()?.to_vec())))
                .ok_or_else(malformed)?;
            chunks.insert(h, data);
        }
        let mut entries = HashMap::new();
        for entry in entries_v.as_list().ok_or_else(malformed)? {
            let parsed = entry.as_list().and_then(|triple| match triple {
                [h, data, state] => {
                    let state = match state.as_int()? {
                        0 => None,
                        1 => Some(ReplayedEntryState::Clean),
                        2 => Some(ReplayedEntryState::Dirty),
                        _ => return None,
                    };
                    Some((h.as_int()?, (data.as_bytes()?.to_vec(), state)))
                }
                _ => None,
            });
            let (h, e) = parsed.ok_or_else(malformed)?;
            entries.insert(h, e);
        }
        let mut dirty = BTreeSet::new();
        for h in dirty_v.as_list().ok_or_else(malformed)? {
            dirty.insert(h.as_int().ok_or_else(malformed)?);
        }
        self.chunks = chunks;
        self.entries = entries;
        self.dirty = dirty;
        Ok(())
    }
}

/// Invariant (i) of §7.2.1: every clean entry equals its chunk.
pub fn clean_matches_chunk() -> Invariant<CacheReplayer> {
    Invariant::new("clean-entry-matches-chunk-manager", |r: &CacheReplayer| {
        for (handle, data, state) in r.live_entries() {
            if state == ReplayedEntryState::Clean {
                let chunk = r.chunk(handle).unwrap_or(&[]);
                if chunk != data {
                    return Err(format!(
                        "handle {handle}: clean cache entry ({} bytes) differs from \
                         chunk manager contents ({} bytes)",
                        data.len(),
                        chunk.len()
                    ));
                }
            }
        }
        Ok(())
    })
}

/// Invariant (ii) of §7.2.1: an entry is in either the clean or the dirty
/// list (never recorded contents without a list).
pub fn entry_in_exactly_one_list() -> Invariant<CacheReplayer> {
    Invariant::new("entry-in-clean-or-dirty-list", |r: &CacheReplayer| {
        let orphans = r.orphaned_entries();
        if orphans.is_empty() {
            Ok(())
        } else {
            Err(format!("entries in neither list: {orphans:?}"))
        }
    })
}

use vyrd_core::VarId;

#[cfg(test)]
mod tests {
    use super::*;

    fn m(name: &str) -> MethodId {
        MethodId::from(name)
    }

    #[test]
    fn store_spec_write_read() {
        let mut s = StoreSpec::new();
        s.apply(
            &m("Write"),
            &[Value::from(1i64), Value::from(vec![1u8, 2])],
            &Value::Unit,
        )
        .unwrap();
        assert_eq!(s.get(1), Some(&[1u8, 2][..]));
        assert!(s.accepts_observation(
            &m("Read"),
            &[Value::from(1i64)],
            &Value::from(vec![1u8, 2])
        ));
        assert!(s.accepts_observation(&m("Read"), &[Value::from(9i64)], &Value::Unit));
        assert!(!s.accepts_observation(
            &m("Read"),
            &[Value::from(1i64)],
            &Value::from(vec![9u8])
        ));
    }

    #[test]
    fn store_spec_flush_and_revoke_are_no_ops() {
        let mut s = StoreSpec::new();
        s.apply(
            &m("Write"),
            &[Value::from(1i64), Value::from(vec![7u8])],
            &Value::Unit,
        )
        .unwrap();
        let before = s.clone();
        s.apply(&m("Flush"), &[], &Value::Unit).unwrap();
        s.apply(&m("Revoke"), &[Value::from(1i64)], &Value::Unit)
            .unwrap();
        assert_eq!(s, before);
        assert!(s.apply(&m("Flush"), &[], &Value::from(1i64)).is_err());
    }

    fn w(r: &mut CacheReplayer, space: &str, h: i64, v: Value) {
        r.apply_write(&VarId::new(space, h), &v);
    }

    #[test]
    fn replayer_prefers_cache_over_chunk() {
        let mut r = CacheReplayer::new();
        w(&mut r, "chunk", 1, Value::from(vec![1u8]));
        assert_eq!(r.view_of(&Value::from(1i64)), Some(Value::from(vec![1u8])));
        w(&mut r, "cache", 1, Value::from(vec![2u8]));
        w(&mut r, "cache.state", 1, Value::from("dirty"));
        assert_eq!(r.view_of(&Value::from(1i64)), Some(Value::from(vec![2u8])));
        // Dropping the entry falls back to the chunk.
        w(&mut r, "cache.state", 1, Value::from("absent"));
        assert_eq!(r.view_of(&Value::from(1i64)), Some(Value::from(vec![1u8])));
    }

    #[test]
    fn invariant_i_detects_stale_clean_entries() {
        let mut r = CacheReplayer::new();
        w(&mut r, "cache", 1, Value::from(vec![1u8, 2]));
        w(&mut r, "cache.state", 1, Value::from("clean"));
        w(&mut r, "chunk", 1, Value::from(vec![1u8, 2]));
        // (Invariant objects are opaque; evaluate through a checker in the
        // lib tests. Here, check the underlying accessors.)
        let (data, state) = r.entry(1).unwrap();
        assert_eq!(state, ReplayedEntryState::Clean);
        assert_eq!(data, r.chunk(1).unwrap());
        // Corrupt the chunk: the accessors now disagree.
        w(&mut r, "chunk", 1, Value::from(vec![9u8]));
        assert_ne!(r.entry(1).unwrap().0, r.chunk(1).unwrap());
    }

    #[test]
    fn orphan_detection() {
        let mut r = CacheReplayer::new();
        w(&mut r, "cache", 3, Value::from(vec![5u8]));
        // Contents recorded, no list membership.
        assert_eq!(r.orphaned_entries(), vec![3]);
        w(&mut r, "cache.state", 3, Value::from("dirty"));
        assert!(r.orphaned_entries().is_empty());
    }

    #[test]
    fn dirty_tracking_covers_all_spaces() {
        let mut r = CacheReplayer::new();
        w(&mut r, "chunk", 1, Value::from(vec![1u8]));
        w(&mut r, "cache", 2, Value::from(vec![2u8]));
        w(&mut r, "cache.state", 2, Value::from("dirty"));
        let dirty = r.take_dirty().unwrap();
        assert!(dirty.contains(&Value::from(1i64)));
        assert!(dirty.contains(&Value::from(2i64)));
        assert!(r.take_dirty().unwrap().is_empty());
    }
}
