//! `SyncStringBuffer`: the `java.util.StringBuffer` benchmark (§7.4.1).
//!
//! `StringBuffer` methods are individually synchronized, but
//! `append(StringBuffer other)` needs *both* monitors to be atomic. The
//! known bug the paper checks for ("copying from an unprotected
//! StringBuffer", Table 1) is that `append` reads `other.length()` in one
//! synchronized step and copies `other`'s characters in another — if a
//! concurrent `setLength` shrinks `other` in between, the copy either
//! throws (modeled as an exceptional return the specification rejects) or
//! silently appends stale content (caught by view refinement at the
//! commit).
//!
//! Buffers live in a [`BufferPool`] and are addressed by integer ids so
//! the specification can model the whole group of buffers as one
//! method-atomic transition system.

use std::sync::Arc;

use vyrd_rt::sync::Mutex;
use vyrd_core::instrument::{BlockGuard, MethodSession};
use vyrd_core::log::{EventLog, ThreadLogger};
use vyrd_core::{Value, VarId};

/// Which `AppendBuffer` implementation to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum StringBufferVariant {
    /// Both monitors are held (in id order) across the copy.
    #[default]
    Correct,
    /// The source length is read in one monitor section, the characters
    /// copied in another ("copying from an unprotected StringBuffer").
    Buggy,
}

#[derive(Debug)]
struct Inner {
    buffers: Vec<Mutex<String>>,
    variant: StringBufferVariant,
    log: EventLog,
}

/// A fixed group of monitor-synchronized string buffers.
///
/// # Examples
///
/// ```
/// use vyrd_core::log::{EventLog, LogMode};
/// use vyrd_javalib::{BufferPool, StringBufferVariant};
///
/// let log = EventLog::in_memory(LogMode::Io);
/// let pool = BufferPool::new(2, StringBufferVariant::Correct, log);
/// let h = pool.handle();
/// h.append(0, "ab");
/// h.append(1, "cd");
/// h.append_buffer(0, 1);
/// assert_eq!(h.to_string(0).as_str(), Some("abcd"));
/// ```
#[derive(Clone, Debug)]
pub struct BufferPool {
    inner: Arc<Inner>,
}

impl BufferPool {
    /// Creates `count` empty buffers.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn new(count: usize, variant: StringBufferVariant, log: EventLog) -> BufferPool {
        assert!(count > 0, "buffer pool must not be empty");
        BufferPool {
            inner: Arc::new(Inner {
                buffers: (0..count).map(|_| Mutex::new(String::new())).collect(),
                variant,
                log,
            }),
        }
    }

    /// Number of buffers in the pool.
    pub fn len(&self) -> usize {
        self.inner.buffers.len()
    }

    /// `true` if the pool has no buffers (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.inner.buffers.is_empty()
    }

    /// The event log this pool records into.
    pub fn log(&self) -> &EventLog {
        &self.inner.log
    }

    /// Creates a per-thread handle with a fresh thread id.
    pub fn handle(&self) -> BufferPoolHandle {
        BufferPoolHandle {
            pool: self.clone(),
            logger: self.inner.log.logger(),
        }
    }
}

/// Per-thread access to a [`BufferPool`].
#[derive(Clone, Debug)]
pub struct BufferPoolHandle {
    pool: BufferPool,
    logger: ThreadLogger,
}

impl BufferPoolHandle {
    fn buffer(&self, id: i64) -> &Mutex<String> {
        &self.pool.inner.buffers[id as usize]
    }

    /// Coarse-grained op-level log records (§6.2): the appended delta /
    /// the new length, not the whole buffer — keeping log volume
    /// proportional to the work done.
    fn log_append(&self, id: i64, delta: &str) {
        self.logger
            .write(VarId::new("sb.append", id), Value::from(delta.to_owned()));
    }

    fn log_set_len(&self, id: i64, n: usize) {
        self.logger
            .write(VarId::new("sb.setlen", id), Value::from(n));
    }

    /// `Append(id, s)`: appends the literal `s` to buffer `id`.
    pub fn append(&self, id: i64, s: &str) {
        let args = [Value::from(id), Value::from(s)];
        let mut session = MethodSession::enter(&self.logger, "Append", &args);
        {
            let mut buf = self.buffer(id).lock();
            let block = BlockGuard::enter(&self.logger);
            buf.push_str(s);
            self.log_append(id, s);
            session.commit();
            drop(block);
        }
        session.exit(Value::Unit);
    }

    /// `SetLength(id, n)`: truncates buffer `id` to `n` characters, or
    /// pads it with spaces up to `n`.
    pub fn set_length(&self, id: i64, n: usize) {
        let args = [Value::from(id), Value::from(n)];
        let mut session = MethodSession::enter(&self.logger, "SetLength", &args);
        {
            let mut buf = self.buffer(id).lock();
            let block = BlockGuard::enter(&self.logger);
            if n <= buf.len() {
                buf.truncate(n);
            } else {
                let pad = n - buf.len();
                buf.extend(std::iter::repeat_n(' ', pad));
            }
            self.log_set_len(id, n);
            session.commit();
            drop(block);
        }
        session.exit(Value::Unit);
    }

    /// `AppendBuffer(dst, src)`: appends the current content of buffer
    /// `src` to buffer `dst`.
    ///
    /// The correct variant holds both monitors (in id order) across the
    /// copy; the buggy variant reproduces the classic race.
    pub fn append_buffer(&self, dst: i64, src: i64) -> Value {
        let args = [Value::from(dst), Value::from(src)];
        let mut session = MethodSession::enter(&self.logger, "AppendBuffer", &args);
        if dst == src {
            // sb.append(sb): doubles the content under one monitor.
            let mut buf = self.buffer(dst).lock();
            let block = BlockGuard::enter(&self.logger);
            let copy = buf.clone();
            buf.push_str(&copy);
            self.log_append(dst, &copy);
            session.commit();
            drop(block);
            return session.exit(Value::Unit);
        }
        match self.pool.inner.variant {
            StringBufferVariant::Correct => {
                // Lock both monitors in id order (deadlock-free) so the
                // read of src and the write of dst are one atomic step.
                let (lo, hi) = (dst.min(src), dst.max(src));
                let lo_guard = self.buffer(lo).lock();
                let hi_guard = self.buffer(hi).lock();
                let (mut dst_guard, src_guard) = if dst < src {
                    (lo_guard, hi_guard)
                } else {
                    (hi_guard, lo_guard)
                };
                let block = BlockGuard::enter(&self.logger);
                let copy = src_guard.clone();
                dst_guard.push_str(&copy);
                self.log_append(dst, &copy);
                session.commit();
                drop(block);
                drop(dst_guard);
                drop(src_guard);
                session.exit(Value::Unit)
            }
            StringBufferVariant::Buggy => {
                // BUG step 1: read src's length under its monitor...
                let n = self.buffer(src).lock().len();
                // A real scheduling window (not just a yield) so the race
                // manifests reliably under test harnesses.
                std::thread::sleep(std::time::Duration::from_micros(30));
                // BUG step 2: ...then copy n characters in a separate
                // monitor section. src may have shrunk: Java's getChars
                // throws; a same-length rewrite silently copies different
                // content than the length-read observed.
                let copied = {
                    let src_guard = self.buffer(src).lock();
                    if src_guard.len() < n {
                        None
                    } else {
                        Some(src_guard[..n].to_owned())
                    }
                };
                let Some(copied) = copied else {
                    // ArrayIndexOutOfBoundsException escapes append().
                    session.commit();
                    return session.exit(Value::exception("IndexOutOfBounds"));
                };
                let mut dst_guard = self.buffer(dst).lock();
                let block = BlockGuard::enter(&self.logger);
                dst_guard.push_str(&copied);
                self.log_append(dst, &copied);
                session.commit();
                drop(block);
                drop(dst_guard);
                session.exit(Value::Unit)
            }
        }
    }

    /// `ToString(id)`: the current content of buffer `id`. Observer.
    pub fn to_string(&self, id: i64) -> Value {
        let session = MethodSession::enter(&self.logger, "ToString", &[Value::from(id)]);
        let content = self.buffer(id).lock().clone();
        session.exit(Value::from(content))
    }

    /// `Length(id)`: the current length of buffer `id`. Observer.
    pub fn length(&self, id: i64) -> i64 {
        let session = MethodSession::enter(&self.logger, "Length", &[Value::from(id)]);
        let n = self.buffer(id).lock().len() as i64;
        session.exit(Value::from(n));
        n
    }
}
