//! `SyncVector`: the `java.util.Vector` benchmark (§7.4.1).
//!
//! `java.util.Vector` is "synchronized": every public method takes the
//! object monitor. The known concurrency bug the paper checks for
//! ("taking length non-atomically in `lastIndexOf()`", Table 1) is that
//! `lastIndexOf(Object)` first reads `size()` in one synchronized step and
//! then scans `elementAt(size-1) .. elementAt(0)` in another — if a
//! concurrent `removeLast` shrinks the vector in between, the scan indexes
//! past the end and throws `ArrayIndexOutOfBoundsException` (modeled here
//! as an exceptional return value, which the specification never allows
//! for `LastIndexOf`).
//!
//! Methods: `Add(x)`, `RemoveLast()`, `Get(i)`, `Size()`,
//! `LastIndexOf(x)`.

use std::sync::Arc;

use vyrd_rt::sync::Mutex;
use vyrd_core::instrument::{BlockGuard, MethodSession};
use vyrd_core::log::{EventLog, ThreadLogger};
use vyrd_core::{Value, VarId};

/// Which `LastIndexOf` implementation to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum VectorVariant {
    /// `LastIndexOf` holds the monitor across the whole length-read +
    /// scan.
    #[default]
    Correct,
    /// The length is read in one monitor section and the scan runs in
    /// another ("taking length non-atomically").
    Buggy,
}

#[derive(Debug)]
struct Inner {
    elems: Mutex<Vec<i64>>,
    variant: VectorVariant,
    log: EventLog,
}

/// A monitor-synchronized growable vector of integers.
///
/// # Examples
///
/// ```
/// use vyrd_core::log::{EventLog, LogMode};
/// use vyrd_javalib::{SyncVector, VectorVariant};
///
/// let log = EventLog::in_memory(LogMode::Io);
/// let v = SyncVector::new(VectorVariant::Correct, log);
/// let h = v.handle();
/// h.add(7);
/// h.add(9);
/// h.add(7);
/// assert_eq!(h.last_index_of(7).as_int(), Some(2));
/// assert_eq!(h.size(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct SyncVector {
    inner: Arc<Inner>,
}

impl SyncVector {
    /// Creates an empty vector.
    pub fn new(variant: VectorVariant, log: EventLog) -> SyncVector {
        SyncVector {
            inner: Arc::new(Inner {
                elems: Mutex::new(Vec::new()),
                variant,
                log,
            }),
        }
    }

    /// The event log this vector records into.
    pub fn log(&self) -> &EventLog {
        &self.inner.log
    }

    /// Creates a per-thread handle with a fresh thread id.
    pub fn handle(&self) -> SyncVectorHandle {
        SyncVectorHandle {
            v: self.clone(),
            logger: self.inner.log.logger(),
        }
    }
}

/// Per-thread access to a [`SyncVector`].
#[derive(Clone, Debug)]
pub struct SyncVectorHandle {
    v: SyncVector,
    logger: ThreadLogger,
}

impl SyncVectorHandle {
    /// `Add(x)`: appends `x`. The commit action is the append, performed
    /// and logged under the monitor.
    pub fn add(&self, x: i64) {
        let mut session = MethodSession::enter(&self.logger, "Add", &[Value::from(x)]);
        {
            let mut elems = self.v.inner.elems.lock();
            let block = BlockGuard::enter(&self.logger);
            let i = elems.len() as i64;
            elems.push(x);
            self.logger.write(VarId::new("vec.elem", i), Value::from(x));
            self.logger
                .write(VarId::new("vec.len", 0), Value::from(elems.len()));
            session.commit();
            drop(block);
        }
        session.exit(Value::Unit);
    }

    /// `RemoveLast()`: removes and returns the last element, or fails on
    /// an empty vector.
    pub fn remove_last(&self) -> Value {
        let mut session = MethodSession::enter(&self.logger, "RemoveLast", &[]);
        let ret = {
            let mut elems = self.v.inner.elems.lock();
            let block = BlockGuard::enter(&self.logger);
            let ret = match elems.pop() {
                Some(x) => {
                    self.logger
                        .write(VarId::new("vec.len", 0), Value::from(elems.len()));
                    Value::from(x)
                }
                None => Value::failure(),
            };
            session.commit();
            drop(block);
            ret
        };
        session.exit(ret)
    }

    /// `Get(i)`: the element at `i`, or an exceptional value when out of
    /// bounds. Observer.
    pub fn get(&self, i: i64) -> Value {
        let session = MethodSession::enter(&self.logger, "Get", &[Value::from(i)]);
        let ret = {
            let elems = self.v.inner.elems.lock();
            match usize::try_from(i).ok().and_then(|i| elems.get(i)) {
                Some(&x) => Value::from(x),
                None => Value::exception("IndexOutOfBounds"),
            }
        };
        session.exit(ret)
    }

    /// `Size()`: the current length. Observer.
    pub fn size(&self) -> i64 {
        let session = MethodSession::enter(&self.logger, "Size", &[]);
        let n = self.v.inner.elems.lock().len() as i64;
        session.exit(Value::from(n));
        n
    }

    /// `LastIndexOf(x)`: the greatest index holding `x`, or `-1`.
    /// Observer.
    ///
    /// The [`VectorVariant::Buggy`] version reads the length and performs
    /// the backwards scan in *separate* monitor sections; a concurrent
    /// `RemoveLast` in between makes the scan index out of bounds, which
    /// surfaces as an exceptional return the specification rejects.
    pub fn last_index_of(&self, x: i64) -> Value {
        let session = MethodSession::enter(&self.logger, "LastIndexOf", &[Value::from(x)]);
        let ret = match self.v.inner.variant {
            VectorVariant::Correct => {
                let elems = self.v.inner.elems.lock();
                match elems.iter().rposition(|&e| e == x) {
                    Some(i) => Value::from(i as i64),
                    None => Value::from(-1i64),
                }
            }
            VectorVariant::Buggy => {
                // Synchronized step 1: read the length.
                let n = self.v.inner.elems.lock().len();
                // A real scheduling window (not just a yield) so the race
                // manifests reliably under test harnesses.
                std::thread::sleep(std::time::Duration::from_micros(30));
                // Synchronized step 2: scan from n-1 downwards — but the
                // vector may have shrunk.
                let elems = self.v.inner.elems.lock();
                if n > elems.len() {
                    // elementAt(n-1) throws in Java.
                    Value::exception("IndexOutOfBounds")
                } else {
                    match elems[..n].iter().rposition(|&e| e == x) {
                        Some(i) => Value::from(i as i64),
                        None => Value::from(-1i64),
                    }
                }
            }
        };
        session.exit(ret)
    }
}
