//! Executable specifications for the Java-library benchmarks.

use vyrd_core::spec::{MethodKind, Spec, SpecEffect, SpecError};
use vyrd_core::view::View;
use vyrd_core::{MethodId, Value};

/// The view key under which the vector's length is reported.
pub fn len_key() -> Value {
    Value::from("len")
}

/// Atomic specification of [`SyncVector`](crate::SyncVector): a plain
/// sequence, every method one transition.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VectorSpec {
    elems: Vec<i64>,
}

impl VectorSpec {
    /// Creates the empty-vector specification.
    pub fn new() -> VectorSpec {
        VectorSpec::default()
    }

    /// Current abstract contents.
    pub fn elems(&self) -> &[i64] {
        &self.elems
    }

    fn int_arg(args: &[Value], i: usize) -> Result<i64, SpecError> {
        args.get(i)
            .and_then(Value::as_int)
            .ok_or_else(|| SpecError::new(format!("argument {i} is not an integer")))
    }
}

impl Spec for VectorSpec {
    fn kind(&self, method: &MethodId) -> MethodKind {
        match method.name() {
            "Add" | "RemoveLast" => MethodKind::Mutator,
            _ => MethodKind::Observer,
        }
    }

    fn apply(
        &mut self,
        method: &MethodId,
        args: &[Value],
        ret: &Value,
    ) -> Result<SpecEffect, SpecError> {
        match method.name() {
            "Add" => {
                let x = Self::int_arg(args, 0)?;
                self.elems.push(x);
                Ok(SpecEffect::touching([
                    Value::from(self.elems.len() - 1),
                    len_key(),
                ]))
            }
            "RemoveLast" => {
                if ret.is_failure() {
                    if self.elems.is_empty() {
                        Ok(SpecEffect::unchanged())
                    } else {
                        Err(SpecError::new(
                            "RemoveLast failed although the vector is non-empty",
                        ))
                    }
                } else {
                    let x = ret.as_int().ok_or_else(|| {
                        SpecError::new(format!("RemoveLast returns an element, not {ret}"))
                    })?;
                    match self.elems.last() {
                        Some(&last) if last == x => {
                            self.elems.pop();
                            Ok(SpecEffect::touching([
                                Value::from(self.elems.len()),
                                len_key(),
                            ]))
                        }
                        Some(&last) => Err(SpecError::new(format!(
                            "RemoveLast returned {x} but the last element is {last}"
                        ))),
                        None => Err(SpecError::new(format!(
                            "RemoveLast returned {x} from an empty vector"
                        ))),
                    }
                }
            }
            other => Err(SpecError::new(format!("unknown mutator {other}"))),
        }
    }

    fn accepts_observation(&self, method: &MethodId, args: &[Value], ret: &Value) -> bool {
        match method.name() {
            "Get" => {
                let Some(i) = args.first().and_then(Value::as_int) else {
                    return false;
                };
                match usize::try_from(i).ok().and_then(|i| self.elems.get(i)) {
                    Some(&x) => ret.as_int() == Some(x),
                    None => ret.is_exception(),
                }
            }
            "Size" => ret.as_int() == Some(self.elems.len() as i64),
            "LastIndexOf" => {
                let Some(x) = args.first().and_then(Value::as_int) else {
                    return false;
                };
                // The atomic LastIndexOf never throws.
                let expected = self
                    .elems
                    .iter()
                    .rposition(|&e| e == x)
                    .map(|i| i as i64)
                    .unwrap_or(-1);
                ret.as_int() == Some(expected)
            }
            _ => false,
        }
    }

    fn view(&self) -> View {
        let mut v: View = self
            .elems
            .iter()
            .enumerate()
            .map(|(i, &x)| (Value::from(i), Value::from(x)))
            .collect();
        v.insert(len_key(), Value::from(self.elems.len()));
        v
    }

    fn view_of(&self, key: &Value) -> Option<Value> {
        if *key == len_key() {
            return Some(Value::from(self.elems.len()));
        }
        let i = usize::try_from(key.as_int()?).ok()?;
        self.elems.get(i).map(|&x| Value::from(x))
    }

    fn save_state(&self) -> Option<Value> {
        Some(self.elems.iter().map(|&x| Value::from(x)).collect())
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), SpecError> {
        let elems = state
            .as_list()
            .ok_or_else(|| SpecError::new("vector state must be a list"))?;
        self.elems = elems
            .iter()
            .map(|v| {
                v.as_int()
                    .ok_or_else(|| SpecError::new("vector element must be an integer"))
            })
            .collect::<Result<_, _>>()?;
        Ok(())
    }
}

/// Atomic specification of a [`BufferPool`](crate::BufferPool): a fixed
/// group of strings, every method one transition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StringBufferSpec {
    buffers: Vec<String>,
}

impl StringBufferSpec {
    /// Creates a specification with `count` empty buffers.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn new(count: usize) -> StringBufferSpec {
        assert!(count > 0, "buffer pool must not be empty");
        StringBufferSpec {
            buffers: vec![String::new(); count],
        }
    }

    /// Current abstract content of buffer `id`.
    pub fn content(&self, id: usize) -> &str {
        &self.buffers[id]
    }

    fn buffer_arg(&self, args: &[Value], i: usize) -> Result<usize, SpecError> {
        let id = args
            .get(i)
            .and_then(Value::as_int)
            .ok_or_else(|| SpecError::new(format!("argument {i} is not a buffer id")))?;
        let id = usize::try_from(id)
            .ok()
            .filter(|&id| id < self.buffers.len())
            .ok_or_else(|| SpecError::new(format!("buffer id {id} out of range")))?;
        Ok(id)
    }
}

impl Spec for StringBufferSpec {
    fn kind(&self, method: &MethodId) -> MethodKind {
        match method.name() {
            "Append" | "SetLength" | "AppendBuffer" => MethodKind::Mutator,
            _ => MethodKind::Observer,
        }
    }

    fn apply(
        &mut self,
        method: &MethodId,
        args: &[Value],
        ret: &Value,
    ) -> Result<SpecEffect, SpecError> {
        match method.name() {
            "Append" => {
                let id = self.buffer_arg(args, 0)?;
                let s = args
                    .get(1)
                    .and_then(Value::as_str)
                    .ok_or_else(|| SpecError::new("Append takes a string"))?;
                self.buffers[id].push_str(s);
                Ok(SpecEffect::touching([id]))
            }
            "SetLength" => {
                let id = self.buffer_arg(args, 0)?;
                let n = args
                    .get(1)
                    .and_then(Value::as_int)
                    .and_then(|n| usize::try_from(n).ok())
                    .ok_or_else(|| SpecError::new("SetLength takes a non-negative length"))?;
                let buf = &mut self.buffers[id];
                if n <= buf.len() {
                    buf.truncate(n);
                } else {
                    let pad = n - buf.len();
                    buf.extend(std::iter::repeat_n(' ', pad));
                }
                Ok(SpecEffect::touching([id]))
            }
            "AppendBuffer" => {
                let dst = self.buffer_arg(args, 0)?;
                let src = self.buffer_arg(args, 1)?;
                if !ret.is_unit() {
                    // The atomic append never terminates exceptionally —
                    // this is exactly how the unprotected-copy bug
                    // surfaces to I/O refinement.
                    return Err(SpecError::new(format!(
                        "AppendBuffer returns unit, not {ret}"
                    )));
                }
                let copy = self.buffers[src].clone();
                self.buffers[dst].push_str(&copy);
                Ok(SpecEffect::touching([dst]))
            }
            other => Err(SpecError::new(format!("unknown mutator {other}"))),
        }
    }

    fn accepts_observation(&self, method: &MethodId, args: &[Value], ret: &Value) -> bool {
        let Ok(id) = self.buffer_arg(args, 0) else {
            return false;
        };
        match method.name() {
            "ToString" => ret.as_str() == Some(self.buffers[id].as_str()),
            "Length" => ret.as_int() == Some(self.buffers[id].len() as i64),
            _ => false,
        }
    }

    fn view(&self) -> View {
        self.buffers
            .iter()
            .enumerate()
            .map(|(id, s)| (Value::from(id), Value::from(s.clone())))
            .collect()
    }

    fn view_of(&self, key: &Value) -> Option<Value> {
        let id = usize::try_from(key.as_int()?).ok()?;
        self.buffers.get(id).map(|s| Value::from(s.clone()))
    }

    fn save_state(&self) -> Option<Value> {
        Some(self.buffers.iter().map(|s| Value::from(s.clone())).collect())
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), SpecError> {
        let buffers = state
            .as_list()
            .ok_or_else(|| SpecError::new("string-buffer state must be a list"))?;
        // The pool size is a constructor parameter, not part of the
        // serialized state; a mismatch means the checkpoint belongs to a
        // differently configured run.
        if buffers.len() != self.buffers.len() {
            return Err(SpecError::new(format!(
                "checkpoint has {} buffers but this pool was built with {}",
                buffers.len(),
                self.buffers.len()
            )));
        }
        self.buffers = buffers
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| SpecError::new("buffer content must be a string"))
            })
            .collect::<Result<_, _>>()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(name: &str) -> MethodId {
        MethodId::from(name)
    }

    #[test]
    fn vector_add_and_remove() {
        let mut s = VectorSpec::new();
        s.apply(&m("Add"), &[Value::from(7i64)], &Value::Unit).unwrap();
        s.apply(&m("Add"), &[Value::from(9i64)], &Value::Unit).unwrap();
        assert_eq!(s.elems(), &[7, 9]);
        s.apply(&m("RemoveLast"), &[], &Value::from(9i64)).unwrap();
        assert_eq!(s.elems(), &[7]);
        // Wrong element rejected.
        assert!(s.apply(&m("RemoveLast"), &[], &Value::from(3i64)).is_err());
        s.apply(&m("RemoveLast"), &[], &Value::from(7i64)).unwrap();
        // Failure only on empty.
        s.apply(&m("RemoveLast"), &[], &Value::failure()).unwrap();
        s.apply(&m("Add"), &[Value::from(1i64)], &Value::Unit).unwrap();
        assert!(s.apply(&m("RemoveLast"), &[], &Value::failure()).is_err());
    }

    #[test]
    fn vector_observers() {
        let mut s = VectorSpec::new();
        for x in [5, 6, 5] {
            s.apply(&m("Add"), &[Value::from(x)], &Value::Unit).unwrap();
        }
        assert!(s.accepts_observation(&m("Get"), &[Value::from(1i64)], &Value::from(6i64)));
        assert!(s.accepts_observation(
            &m("Get"),
            &[Value::from(9i64)],
            &Value::exception("IndexOutOfBounds")
        ));
        assert!(s.accepts_observation(&m("Size"), &[], &Value::from(3i64)));
        assert!(s.accepts_observation(
            &m("LastIndexOf"),
            &[Value::from(5i64)],
            &Value::from(2i64)
        ));
        assert!(s.accepts_observation(
            &m("LastIndexOf"),
            &[Value::from(42i64)],
            &Value::from(-1i64)
        ));
        // The atomic LastIndexOf never throws.
        assert!(!s.accepts_observation(
            &m("LastIndexOf"),
            &[Value::from(5i64)],
            &Value::exception("IndexOutOfBounds")
        ));
    }

    #[test]
    fn vector_view_includes_len() {
        let mut s = VectorSpec::new();
        s.apply(&m("Add"), &[Value::from(4i64)], &Value::Unit).unwrap();
        let v = s.view();
        assert_eq!(v.get(&Value::from(0i64)), Some(&Value::from(4i64)));
        assert_eq!(v.get(&len_key()), Some(&Value::from(1i64)));
        assert_eq!(s.view_of(&len_key()), Some(Value::from(1i64)));
        assert_eq!(s.view_of(&Value::from(5i64)), None);
    }

    #[test]
    fn stringbuffer_append_and_set_length() {
        let mut s = StringBufferSpec::new(2);
        s.apply(
            &m("Append"),
            &[Value::from(0i64), Value::from("abc")],
            &Value::Unit,
        )
        .unwrap();
        assert_eq!(s.content(0), "abc");
        s.apply(
            &m("SetLength"),
            &[Value::from(0i64), Value::from(1i64)],
            &Value::Unit,
        )
        .unwrap();
        assert_eq!(s.content(0), "a");
        s.apply(
            &m("SetLength"),
            &[Value::from(0i64), Value::from(3i64)],
            &Value::Unit,
        )
        .unwrap();
        assert_eq!(s.content(0), "a  ");
    }

    #[test]
    fn stringbuffer_append_buffer_uses_spec_content() {
        let mut s = StringBufferSpec::new(2);
        s.apply(
            &m("Append"),
            &[Value::from(1i64), Value::from("xy")],
            &Value::Unit,
        )
        .unwrap();
        s.apply(
            &m("AppendBuffer"),
            &[Value::from(0i64), Value::from(1i64)],
            &Value::Unit,
        )
        .unwrap();
        assert_eq!(s.content(0), "xy");
        // Self-append doubles.
        s.apply(
            &m("AppendBuffer"),
            &[Value::from(0i64), Value::from(0i64)],
            &Value::Unit,
        )
        .unwrap();
        assert_eq!(s.content(0), "xyxy");
        // Exceptional return rejected.
        assert!(s
            .apply(
                &m("AppendBuffer"),
                &[Value::from(0i64), Value::from(1i64)],
                &Value::exception("IndexOutOfBounds"),
            )
            .is_err());
    }

    #[test]
    fn stringbuffer_observers_and_view() {
        let mut s = StringBufferSpec::new(2);
        s.apply(
            &m("Append"),
            &[Value::from(0i64), Value::from("hi")],
            &Value::Unit,
        )
        .unwrap();
        assert!(s.accepts_observation(&m("ToString"), &[Value::from(0i64)], &Value::from("hi")));
        assert!(!s.accepts_observation(&m("ToString"), &[Value::from(0i64)], &Value::from("ho")));
        assert!(s.accepts_observation(&m("Length"), &[Value::from(0i64)], &Value::from(2i64)));
        assert_eq!(s.view_of(&Value::from(0i64)), Some(Value::from("hi")));
        assert_eq!(s.view().len(), 2);
    }

    #[test]
    fn stringbuffer_rejects_bad_ids() {
        let mut s = StringBufferSpec::new(1);
        assert!(s
            .apply(
                &m("Append"),
                &[Value::from(5i64), Value::from("x")],
                &Value::Unit
            )
            .is_err());
        assert!(!s.accepts_observation(&m("Length"), &[Value::from(-1i64)], &Value::from(0i64)));
    }
}
