//! Replayers for the Java-library benchmarks.

use std::collections::{BTreeSet, HashMap};

use vyrd_core::replay::Replayer;
use vyrd_core::view::View;
use vyrd_core::{Value, VarId};

use crate::spec::len_key;

/// Shadow state for [`SyncVector`](crate::SyncVector).
///
/// Variables: `vec.elem[i]` (element writes) and `vec.len[0]` (length
/// after each mutation). The view is `{ i -> elem[i] : i < len }` plus a
/// `"len"` entry.
#[derive(Debug, Default)]
pub struct VectorReplayer {
    elems: HashMap<i64, i64>,
    len: i64,
    dirty: BTreeSet<Value>,
}

impl VectorReplayer {
    /// Creates an empty shadow vector.
    pub fn new() -> VectorReplayer {
        VectorReplayer::default()
    }
}

impl Replayer for VectorReplayer {
    fn apply_write(&mut self, var: &VarId, value: &Value) {
        match var.space() {
            "vec.elem" => {
                self.elems.insert(var.index(), value.as_int().unwrap_or(0));
                self.dirty.insert(Value::from(var.index()));
            }
            "vec.len" => {
                let new_len = value.as_int().unwrap_or(0);
                // Indices between the old and new length enter or leave
                // the view.
                let (lo, hi) = if new_len < self.len {
                    (new_len, self.len)
                } else {
                    (self.len, new_len)
                };
                for i in lo..hi {
                    self.dirty.insert(Value::from(i));
                }
                self.len = new_len;
                self.dirty.insert(len_key());
            }
            other => panic!("VectorReplayer: unknown variable space {other:?}"),
        }
    }

    fn view(&self) -> View {
        let mut v: View = (0..self.len)
            .filter_map(|i| {
                self.elems
                    .get(&i)
                    .map(|&x| (Value::from(i), Value::from(x)))
            })
            .collect();
        v.insert(len_key(), Value::from(self.len));
        v
    }

    fn view_of(&self, key: &Value) -> Option<Value> {
        if *key == len_key() {
            return Some(Value::from(self.len));
        }
        let i = key.as_int()?;
        if i < 0 || i >= self.len {
            return None;
        }
        self.elems.get(&i).map(|&x| Value::from(x))
    }

    fn take_dirty(&mut self) -> Option<Vec<Value>> {
        Some(std::mem::take(&mut self.dirty).into_iter().collect())
    }
}

/// Shadow state for a [`BufferPool`](crate::BufferPool).
///
/// The pool logs coarse-grained *op-level* records (§6.2): the appended
/// delta (`sb.append[id]`) or the new length (`sb.setlen[id]`). Replay
/// re-executes the operation on the shadow buffer — the
/// programmer-provided "replay methods" of §6.2.
#[derive(Debug, Default)]
pub struct StringBufferReplayer {
    buffers: HashMap<i64, String>,
    dirty: BTreeSet<Value>,
}

impl StringBufferReplayer {
    /// Creates an empty shadow pool; buffers materialize as their first
    /// writes are replayed.
    pub fn new() -> StringBufferReplayer {
        StringBufferReplayer::default()
    }

    /// Like [`StringBufferReplayer::new`] but with `count` buffers known
    /// to exist up front, so the initial (all-empty) view already matches
    /// the specification.
    pub fn with_buffers(count: usize) -> StringBufferReplayer {
        StringBufferReplayer {
            buffers: (0..count as i64).map(|id| (id, String::new())).collect(),
            dirty: BTreeSet::new(),
        }
    }
}

impl Replayer for StringBufferReplayer {
    fn apply_write(&mut self, var: &VarId, value: &Value) {
        match var.space() {
            "sb.append" => {
                let buf = self.buffers.entry(var.index()).or_default();
                buf.push_str(value.as_str().unwrap_or(""));
                self.dirty.insert(Value::from(var.index()));
            }
            "sb.setlen" => {
                let n = value.as_int().and_then(|n| usize::try_from(n).ok()).unwrap_or(0);
                let buf = self.buffers.entry(var.index()).or_default();
                if n <= buf.len() {
                    buf.truncate(n);
                } else {
                    let pad = n - buf.len();
                    buf.extend(std::iter::repeat_n(' ', pad));
                }
                self.dirty.insert(Value::from(var.index()));
            }
            other => panic!("StringBufferReplayer: unknown variable space {other:?}"),
        }
    }

    fn view(&self) -> View {
        self.buffers
            .iter()
            .map(|(&id, s)| (Value::from(id), Value::from(s.clone())))
            .collect()
    }

    fn view_of(&self, key: &Value) -> Option<Value> {
        self.buffers
            .get(&key.as_int()?)
            .map(|s| Value::from(s.clone()))
    }

    fn take_dirty(&mut self) -> Option<Vec<Value>> {
        Some(std::mem::take(&mut self.dirty).into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(r: &mut impl Replayer, space: &str, index: i64, value: Value) {
        r.apply_write(&VarId::new(space, index), &value);
    }

    #[test]
    fn vector_replayer_tracks_contents_and_len() {
        let mut r = VectorReplayer::new();
        w(&mut r, "vec.elem", 0, Value::from(7i64));
        w(&mut r, "vec.len", 0, Value::from(1i64));
        assert_eq!(r.view_of(&Value::from(0i64)), Some(Value::from(7i64)));
        assert_eq!(r.view_of(&len_key()), Some(Value::from(1i64)));
        // Shrinking hides the element without erasing it.
        w(&mut r, "vec.len", 0, Value::from(0i64));
        assert_eq!(r.view_of(&Value::from(0i64)), None);
        assert_eq!(r.view().len(), 1); // just "len"
    }

    #[test]
    fn vector_replayer_dirty_covers_length_changes() {
        let mut r = VectorReplayer::new();
        w(&mut r, "vec.elem", 0, Value::from(7i64));
        w(&mut r, "vec.len", 0, Value::from(1i64));
        let dirty = r.take_dirty().unwrap();
        assert!(dirty.contains(&Value::from(0i64)));
        assert!(dirty.contains(&len_key()));
        // Growing by two marks both new indices.
        w(&mut r, "vec.len", 0, Value::from(3i64));
        let dirty = r.take_dirty().unwrap();
        assert!(dirty.contains(&Value::from(1i64)));
        assert!(dirty.contains(&Value::from(2i64)));
    }

    #[test]
    fn stringbuffer_replayer_replays_ops() {
        let mut r = StringBufferReplayer::with_buffers(2);
        assert_eq!(r.view_of(&Value::from(0i64)), Some(Value::from("")));
        w(&mut r, "sb.append", 0, Value::from("abc"));
        w(&mut r, "sb.append", 0, Value::from("de"));
        assert_eq!(r.view_of(&Value::from(0i64)), Some(Value::from("abcde")));
        w(&mut r, "sb.setlen", 0, Value::from(2i64));
        assert_eq!(r.view_of(&Value::from(0i64)), Some(Value::from("ab")));
        w(&mut r, "sb.setlen", 0, Value::from(4i64));
        assert_eq!(r.view_of(&Value::from(0i64)), Some(Value::from("ab  ")));
        assert_eq!(r.view().len(), 2);
        let dirty = r.take_dirty().unwrap();
        assert_eq!(dirty, vec![Value::from(0i64)]);
    }
}
