//! # vyrd-javalib — the `java.util` microbenchmarks (§7.4.1)
//!
//! Rust reconstructions of the two multithreaded Java class-library
//! benchmarks whose known concurrency bugs the paper detects:
//!
//! * [`SyncVector`] — `java.util.Vector` with the "taking length
//!   non-atomically in `lastIndexOf()`" bug ([`VectorVariant::Buggy`]).
//!   The bug lives in an *observer*, so — as Table 1 notes — view
//!   refinement is no better than I/O refinement at catching it.
//! * [`BufferPool`] — `java.util.StringBuffer` semantics with the
//!   "copying from an unprotected StringBuffer" bug
//!   ([`StringBufferVariant::Buggy`]), which corrupts *state* and is
//!   therefore caught much earlier by view refinement.
//!
//! ```
//! use vyrd_core::checker::Checker;
//! use vyrd_core::log::{EventLog, LogMode};
//! use vyrd_javalib::{SyncVector, VectorReplayer, VectorSpec, VectorVariant};
//!
//! let log = EventLog::in_memory(LogMode::View);
//! let v = SyncVector::new(VectorVariant::Correct, log.clone());
//! let h = v.handle();
//! h.add(3);
//! assert_eq!(h.last_index_of(3).as_int(), Some(0));
//!
//! let report = Checker::view(VectorSpec::new(), VectorReplayer::new())
//!     .check_events(log.snapshot());
//! assert!(report.passed());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod replay;
mod spec;
mod stringbuffer;
mod vector;

pub use replay::{StringBufferReplayer, VectorReplayer};
pub use spec::{len_key, StringBufferSpec, VectorSpec};
pub use stringbuffer::{BufferPool, BufferPoolHandle, StringBufferVariant};
pub use vector::{SyncVector, SyncVectorHandle, VectorVariant};

#[cfg(test)]
mod tests {
    use super::*;
    use vyrd_core::checker::Checker;
    use vyrd_core::log::{EventLog, LogMode};
    use vyrd_core::violation::Report;
    use vyrd_core::Value;

    fn view_log() -> EventLog {
        EventLog::in_memory(LogMode::View)
    }

    fn check_vec_io(log: &EventLog) -> Report {
        Checker::io(VectorSpec::new()).check_events(log.snapshot())
    }

    fn check_vec_view(log: &EventLog) -> Report {
        Checker::view(VectorSpec::new(), VectorReplayer::new()).check_events(log.snapshot())
    }

    fn check_sb_io(log: &EventLog, n: usize) -> Report {
        Checker::io(StringBufferSpec::new(n)).check_events(log.snapshot())
    }

    fn check_sb_view(log: &EventLog, n: usize) -> Report {
        Checker::view(
            StringBufferSpec::new(n),
            StringBufferReplayer::with_buffers(n),
        )
        .check_events(log.snapshot())
    }

    // ---------------- SyncVector ----------------

    #[test]
    fn vector_sequential_semantics() {
        let log = view_log();
        let v = SyncVector::new(VectorVariant::Correct, log.clone());
        let h = v.handle();
        h.add(1);
        h.add(2);
        h.add(1);
        assert_eq!(h.size(), 3);
        assert_eq!(h.get(1).as_int(), Some(2));
        assert!(h.get(7).is_exception());
        assert_eq!(h.last_index_of(1).as_int(), Some(2));
        assert_eq!(h.last_index_of(9).as_int(), Some(-1));
        assert_eq!(h.remove_last().as_int(), Some(1));
        assert_eq!(h.size(), 2);
        let v2 = SyncVector::new(VectorVariant::Correct, view_log());
        assert!(v2.handle().remove_last().is_failure());
        assert!(check_vec_io(&log).passed());
        assert!(check_vec_view(&log).passed());
    }

    #[test]
    fn vector_concurrent_correct_run_passes() {
        let log = view_log();
        let v = SyncVector::new(VectorVariant::Correct, log.clone());
        let mut workers = Vec::new();
        for t in 0..4i64 {
            let h = v.handle();
            workers.push(std::thread::spawn(move || {
                for i in 0..50 {
                    match i % 4 {
                        0 | 1 => h.add(t * 100 + i),
                        2 => {
                            h.remove_last();
                        }
                        _ => {
                            h.last_index_of(t * 100);
                            h.size();
                        }
                    }
                }
            }));
        }
        for w in workers {
            w.join().unwrap();
        }
        let io = check_vec_io(&log);
        assert!(io.passed(), "io: {io}");
        let view = check_vec_view(&log);
        assert!(view.passed(), "view: {view}");
    }

    #[test]
    fn vector_lastindexof_bug_is_caught_by_io_refinement() {
        for _ in 0..400 {
            let log = view_log();
            let v = SyncVector::new(VectorVariant::Buggy, log.clone());
            let seed = v.handle();
            for i in 0..8 {
                seed.add(i);
            }
            let h1 = v.handle();
            let h2 = v.handle();
            let a = std::thread::spawn(move || {
                for _ in 0..8 {
                    h1.last_index_of(0);
                }
            });
            let b = std::thread::spawn(move || {
                for _ in 0..8 {
                    h2.remove_last();
                }
            });
            a.join().unwrap();
            b.join().unwrap();
            let io = check_vec_io(&log);
            if !io.passed() {
                assert_eq!(io.violation.unwrap().category(), "observer-unjustified");
                // The bug is in an observer: view refinement sees it at
                // the same point, no earlier (Table 1's note).
                let view = check_vec_view(&log);
                assert!(!view.passed());
                assert!(!view.violation.unwrap().is_view_only());
                return;
            }
        }
        panic!("the lastIndexOf race never manifested in 400 attempts");
    }

    // ---------------- StringBuffer ----------------

    #[test]
    fn stringbuffer_sequential_semantics() {
        let log = view_log();
        let pool = BufferPool::new(2, StringBufferVariant::Correct, log.clone());
        let h = pool.handle();
        h.append(0, "ab");
        h.append(1, "cd");
        assert_eq!(h.append_buffer(0, 1), Value::Unit);
        assert_eq!(h.to_string(0).as_str(), Some("abcd"));
        assert_eq!(h.length(0), 4);
        h.set_length(0, 2);
        assert_eq!(h.to_string(0).as_str(), Some("ab"));
        h.set_length(0, 3);
        assert_eq!(h.to_string(0).as_str(), Some("ab "));
        h.append_buffer(1, 1);
        assert_eq!(h.to_string(1).as_str(), Some("cdcd"));
        assert!(check_sb_io(&log, 2).passed());
        let view = check_sb_view(&log, 2);
        assert!(view.passed(), "view: {view}");
    }

    #[test]
    fn stringbuffer_concurrent_correct_run_passes() {
        let log = view_log();
        let pool = BufferPool::new(3, StringBufferVariant::Correct, log.clone());
        let mut workers = Vec::new();
        for t in 0..3i64 {
            let h = pool.handle();
            workers.push(std::thread::spawn(move || {
                for i in 0..30 {
                    match i % 4 {
                        0 => h.append(t, "x"),
                        1 => {
                            h.append_buffer((t + 1) % 3, t);
                        }
                        2 => h.set_length(t, (i % 5) as usize),
                        _ => {
                            h.length(t);
                        }
                    }
                }
            }));
        }
        for w in workers {
            w.join().unwrap();
        }
        let io = check_sb_io(&log, 3);
        assert!(io.passed(), "io: {io}");
        let view = check_sb_view(&log, 3);
        assert!(view.passed(), "view: {view}");
    }

    #[test]
    fn stringbuffer_unprotected_copy_is_caught() {
        for _ in 0..400 {
            let log = view_log();
            let pool = BufferPool::new(2, StringBufferVariant::Buggy, log.clone());
            let seed = pool.handle();
            seed.append(1, "0123456789");
            let h1 = pool.handle();
            let h2 = pool.handle();
            let a = std::thread::spawn(move || {
                for _ in 0..12 {
                    h1.append_buffer(0, 1);
                }
            });
            let b = std::thread::spawn(move || {
                for i in 0..40 {
                    h2.set_length(1, if i % 2 == 0 { 2 } else { 10 });
                    // Spread the mutations across the appender's buggy
                    // length-read/copy windows.
                    std::thread::sleep(std::time::Duration::from_micros(10));
                }
            });
            a.join().unwrap();
            b.join().unwrap();
            let view = check_sb_view(&log, 2);
            if !view.passed() {
                // Either the exceptional return (spec rejection) or the
                // torn copy (view mismatch).
                let v = view.violation.unwrap();
                assert!(matches!(
                    v.category(),
                    "view-mismatch" | "spec-rejected-commit"
                ));
                return;
            }
        }
        panic!("the unprotected-copy race never manifested in 400 attempts");
    }
}
