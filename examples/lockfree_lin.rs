//! The lock-free family under linearizability checking: a Treiber stack
//! and a Michael–Scott queue whose commit points are successful CASes,
//! checked in `CheckKind::Lin` mode (per-window witness search over the
//! retained observation digests) alongside plain I/O refinement.
//!
//! Three things are demonstrated, and the process exits non-zero if any
//! of them fails to hold:
//!
//! 1. the correct variants PASS under both Io and Lin on the same trace;
//! 2. the buggy variants — an untagged ABA `Pop` CAS and a non-atomic
//!    `Enqueue` tail swing — FAIL deterministically under both modes at
//!    any seed, because each scenario choreographs its bug with barriers
//!    before the random workload starts;
//! 3. view mode, which needs a replayer the lock-free structures do not
//!    have, is *refused* with an `unsupported-mode` report instead of
//!    vacuously passing.
//!
//! Run with: `cargo run --example lockfree_lin`

use vyrd::core::log::LogMode;
use vyrd::harness::scenario::{record_run, CheckKind, Variant};
use vyrd::harness::scenarios;
use vyrd::harness::workload::WorkloadConfig;

fn main() {
    let cfg = WorkloadConfig {
        threads: 4,
        calls_per_thread: 40,
        key_pool: 10,
        shrink_pool: true,
        internal_task: false,
        seed: 0xCA5,
        pace: None,
    };

    let mut failures = 0u32;
    let mut expect = |what: &str, ok: bool| {
        println!("  {} {what}", if ok { "ok  " } else { "FAIL" });
        if !ok {
            failures += 1;
        }
    };

    for scenario in scenarios::lockfree() {
        let s = scenario.as_ref();
        println!("{} (bug: {})", s.name(), s.bug());

        // 1. Correct variant: one recorded Io-mode trace, two verdicts.
        let run = record_run(s, &cfg, LogMode::Io, Variant::Correct);
        let io = s.check(CheckKind::Io, run.events.clone());
        expect("correct passes Io", io.passed());
        let lin = s.check(CheckKind::Lin, run.events.clone());
        expect("correct passes Lin", lin.passed());
        expect(
            "Lin searched observer windows",
            lin.stats.lin_windows_searched > 0,
        );
        println!(
            "       windows={} fastpath={} backtracks={}",
            lin.stats.lin_windows_searched,
            lin.stats.lin_fastpath_hits,
            lin.stats.lin_witness_backtracks
        );

        // 2. Buggy variant: the choreographed prologue makes the
        // violation deterministic, so FAIL is asserted, not retried.
        let buggy = record_run(s, &cfg, LogMode::Io, Variant::Buggy);
        for kind in [CheckKind::Io, CheckKind::Lin] {
            let report = s.check(kind, buggy.events.clone());
            let rejected = report
                .violation
                .as_ref()
                .is_some_and(|v| v.category() == "spec-rejected-commit");
            expect(&format!("buggy fails {kind:?}"), !report.passed() && rejected);
            if let Some(v) = &report.violation {
                println!("       {v}");
            }
        }

        // 3. View mode needs a replayer these structures don't have; the
        // checker must say so rather than pass vacuously.
        let view = s.check(CheckKind::View, run.events);
        let refused = view
            .violation
            .as_ref()
            .is_some_and(|v| v.category() == "unsupported-mode");
        expect("View is refused as unsupported", !view.passed() && refused);
        println!();
    }

    if failures > 0 {
        println!("{failures} expectation(s) failed");
        std::process::exit(1);
    }
    println!("all lock-free linearizability expectations hold");
}
