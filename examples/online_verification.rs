//! Online checking (§4.2): the verification thread runs *while* the
//! program executes, consuming the log through a channel, and flags the
//! violation as soon as the offending entries arrive — no post-mortem
//! pass needed.
//!
//! The program side is the BST multiset with the "unlocking parent
//! before insertion" bug; workers hammer the same subtree until an insert
//! is lost.
//!
//! Run with: `cargo run --example online_verification`

use vyrd::core::checker::Checker;
use vyrd::core::log::LogMode;
use vyrd::core::online::OnlineVerifier;
use vyrd::multiset::{BstMultiset, BstReplayer, BstVariant, MultisetSpec};

fn main() {
    for attempt in 1..=300 {
        let verifier = OnlineVerifier::spawn(
            LogMode::View,
            Checker::view(MultisetSpec::new(), BstReplayer::new()),
        );
        let ms = BstMultiset::new(BstVariant::UnlockParentEarly, verifier.log().clone());

        // Seed a shared parent, then race two inserts under it.
        ms.handle().insert(50);
        let mut workers = Vec::new();
        for base in [10i64, 20] {
            let h = ms.handle();
            workers.push(std::thread::spawn(move || {
                for i in 0..8 {
                    h.insert(base + i);
                }
            }));
        }
        for w in workers {
            w.join().expect("worker");
        }

        // The workers are done; close the log and collect the verdict the
        // verifier reached *concurrently* with the run.
        let report = verifier.finish();
        if let Some(violation) = report.violation {
            println!("race manifested on attempt {attempt}");
            println!("online verifier verdict:\n  {violation}");
            println!(
                "\n(the verdict was computed live, on a separate thread, \
                 while the workers were still running — §4.2)"
            );
            return;
        }
    }
    println!("the unlock-parent race did not manifest in 300 attempts — try again");
}
