//! The Fig. 5 / Fig. 6 scenario: the buggy `FindSlot` loses an insert,
//! and view refinement catches it at the very commit that overwrote the
//! element — long before any `LookUp` would have surfaced it.
//!
//! Two threads run `InsertPair(5, 6)` and `InsertPair(7, 8)` against a
//! small multiset whose `FindSlot` checks slot emptiness without holding
//! the slot lock across the reservation (Fig. 5). When the race fires,
//! both reserve slot 0 and one element is silently overwritten; the
//! specification says the multiset is `{5, 6, 7, 8}` while the
//! implementation holds only three of the four.
//!
//! Run with: `cargo run --example multiset_violation`

use vyrd::core::checker::Checker;
use vyrd::core::log::{EventLog, LogMode};
use vyrd::multiset::{ArrayMultiset, FindSlotVariant, MultisetSpec, SlotReplayer};

fn main() {
    for attempt in 1..=500 {
        let log = EventLog::in_memory(LogMode::View);
        let multiset = ArrayMultiset::new(4, FindSlotVariant::Buggy, log.clone());

        let h1 = multiset.handle();
        let h2 = multiset.handle();
        let t1 = std::thread::spawn(move || h1.insert_pair(5, 6));
        let t2 = std::thread::spawn(move || h2.insert_pair(7, 8));
        t1.join().expect("t1");
        t2.join().expect("t2");

        let events = log.snapshot();

        // View refinement inspects the replayed implementation state at
        // every commit.
        let view_report = Checker::view(MultisetSpec::new(), SlotReplayer::new())
            .check_events(events.clone());

        // I/O refinement sees only call/return values; with no LookUp in
        // the trace it has nothing to object to (§5's motivating point).
        let io_report = Checker::io(MultisetSpec::new()).check_events(events.clone());

        if view_report.violation.is_some() {
            println!("race manifested on attempt {attempt}");
            println!(
                "\n{}",
                vyrd::core::diagnose::explain(&view_report, &events)
            );
            println!(
                "\nI/O refinement on the same trace: {}",
                if io_report.passed() {
                    "PASS — the lost insert is invisible without an observer"
                } else {
                    "FAIL"
                }
            );

            // Now surface it the I/O way, as Fig. 6 describes: a LookUp(5)
            // after both InsertPairs must return true per the
            // specification, but the implementation lost the element.
            let h = multiset.handle();
            let five = h.lookup(5);
            let seven = h.lookup(7);
            println!("\nafter the fact: lookup(5) = {five}, lookup(7) = {seven}");
            let io_after = Checker::io(MultisetSpec::new()).check_events(log.snapshot());
            println!("I/O refinement with the LookUps appended: {io_after}");
            return;
        }
    }
    println!("the FindSlot race did not manifest in 500 attempts — try again");
}
