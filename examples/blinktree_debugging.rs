//! Driving the B-link tree under a concurrent workload with the
//! compression thread running, then checking both refinement notions —
//! the §7.2.3 use case ("VYRD was a valuable debugging aid during
//! development").
//!
//! Pass `--buggy` to enable the "allowing duplicated data nodes" fault
//! and watch view refinement flag the duplicate at the offending commit.
//!
//! Run with: `cargo run --example blinktree_debugging [-- --buggy]`

use vyrd::blinktree::{BLinkReplayer, BLinkSpec, BLinkTree, BLinkVariant};
use vyrd::core::checker::Checker;
use vyrd::core::log::{EventLog, LogMode};

fn run_once(variant: BLinkVariant, seed: i64) -> (vyrd::core::Report, vyrd::core::Report, usize) {
    let log = EventLog::in_memory(LogMode::View);
    let tree = BLinkTree::new(variant, log.clone());

    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let compressor = {
        let tree = tree.clone();
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            let h = tree.handle();
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                h.compress();
                std::thread::yield_now();
            }
        })
    };

    let mut workers = Vec::new();
    for t in 0..4i64 {
        let h = tree.handle();
        workers.push(std::thread::spawn(move || {
            for i in 0..80 {
                let k = (seed + t * 13 + i * 7) % 37;
                match i % 4 {
                    0 | 1 => h.insert(k, t * 1000 + i),
                    2 => {
                        h.delete(k);
                    }
                    _ => {
                        h.lookup(k);
                    }
                }
            }
        }));
    }
    for w in workers {
        w.join().expect("worker");
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    compressor.join().expect("compressor");

    let events = log.snapshot();
    let n = events.len();
    let io = Checker::io(BLinkSpec::new()).check_events(events.clone());
    let view = Checker::view(BLinkSpec::new(), BLinkReplayer::new()).check_events(events);
    (io, view, n)
}

fn main() {
    let buggy = std::env::args().any(|a| a == "--buggy");
    let variant = if buggy {
        BLinkVariant::DuplicateDataNodes
    } else {
        BLinkVariant::Correct
    };
    println!(
        "driving the B-link tree ({} variant) with 4 workers + compression thread...",
        if buggy { "buggy" } else { "correct" }
    );

    for attempt in 1..=200 {
        let (io, view, events) = run_once(variant, attempt);
        if !buggy {
            println!("\ntrace of {events} events");
            println!("I/O refinement:  {io}");
            println!("view refinement: {view}");
            assert!(io.passed() && view.passed(), "correct variant must pass");
            println!("\nthe tree refines the atomic map on this trace ✔");
            return;
        }
        if let Some(v) = view.violation {
            println!("\nbug manifested on attempt {attempt} (trace of {events} events)");
            println!("view refinement verdict:\n  {v}");
            println!(
                "I/O refinement on the same trace: {}",
                if io.passed() { "PASS (bug invisible)" } else { "FAIL" }
            );
            return;
        }
    }
    println!("the duplicate-data-node race did not manifest — try again");
}
