//! Quickstart: instrument, log, and check a concurrent data structure.
//!
//! Walks the two phases of the VYRD technique end to end on the paper's
//! running example (the §2 multiset):
//!
//! 1. run a concurrent workload against the instrumented implementation,
//!    which records call / return / commit / write actions into the log;
//! 2. hand the log to the refinement checkers and read the verdicts.
//!
//! Run with: `cargo run --example quickstart`

use vyrd::core::checker::{Checker, CheckerOptions};
use vyrd::core::log::{EventLog, LogMode};
use vyrd::multiset::{ArrayMultiset, FindSlotVariant, MultisetSpec, SlotReplayer};

fn main() {
    // Phase 1: record an execution. LogMode::View records everything view
    // refinement needs (call/return/commit + shared-variable writes).
    let log = EventLog::in_memory(LogMode::View);
    let multiset = ArrayMultiset::new(32, FindSlotVariant::Correct, log.clone());

    let mut workers = Vec::new();
    for t in 0..4i64 {
        let handle = multiset.handle(); // one handle (= thread id) per thread
        workers.push(std::thread::spawn(move || {
            for i in 0..25 {
                let x = (t * 25 + i) % 17;
                match i % 4 {
                    0 => {
                        handle.insert(x);
                    }
                    1 => {
                        handle.insert_pair(x, x + 1);
                    }
                    2 => {
                        handle.delete(x);
                    }
                    _ => {
                        handle.lookup(x);
                    }
                }
            }
        }));
    }
    for w in workers {
        w.join().expect("worker");
    }

    let events = log.snapshot();
    println!("recorded {} events ({:?})", events.len(), log.stats());

    // Phase 2a: I/O refinement — the witness interleaving (mutators in
    // commit order) must drive the atomic multiset specification.
    let (io_report, witness) = Checker::io(MultisetSpec::new())
        .with_options(CheckerOptions {
            record_witness: true,
            ..CheckerOptions::default()
        })
        .check_events_with_witness(events.clone());
    println!("\nI/O refinement: {io_report}");
    println!("first five steps of the witness interleaving:");
    for step in witness.iter().take(5) {
        println!("  {step}");
    }

    // Phase 2b: view refinement — additionally replays the logged writes
    // into a shadow multiset and compares canonical views at each commit.
    let view_report =
        Checker::view(MultisetSpec::new(), SlotReplayer::new()).check_events(events);
    println!("\nview refinement: {view_report}");

    assert!(io_report.passed() && view_report.passed());
    println!("\nthe implementation refines its specification on this trace ✔");
}
