//! Using the atomized implementation as the specification (§4.4).
//!
//! "If a separate specification does not exist, our technique enables the
//! use of an atomized version of the same implementation code as the
//! specification." This example checks the concurrent array multiset
//! against *itself*, atomized: a sequential slot array whose transitions
//! are driven by the observed `(method, args, return)` signatures.
//!
//! Run with: `cargo run --example atomized_spec`

use vyrd::core::checker::Checker;
use vyrd::core::log::{EventLog, LogMode};
use vyrd::multiset::{ArrayMultiset, AtomizedArrayMultiset, FindSlotVariant, MultisetSpec};

fn main() {
    const CAPACITY: usize = 16;

    let log = EventLog::in_memory(LogMode::Io);
    let multiset = ArrayMultiset::new(CAPACITY, FindSlotVariant::Correct, log.clone());

    let mut workers = Vec::new();
    for t in 0..4i64 {
        let h = multiset.handle();
        workers.push(std::thread::spawn(move || {
            for i in 0..30 {
                let x = (t * 30 + i) % 11;
                match i % 4 {
                    0 => {
                        h.insert(x);
                    }
                    1 => {
                        h.insert_pair(x, x + 1);
                    }
                    2 => {
                        h.delete(x);
                    }
                    _ => {
                        h.lookup(x);
                    }
                }
            }
        }));
    }
    for w in workers {
        w.join().expect("worker");
    }
    let events = log.snapshot();
    println!("recorded {} events", events.len());

    // Check against the atomized implementation (§4.4)...
    let atomized = AtomizedArrayMultiset::new(CAPACITY);
    let report = Checker::io(atomized).check_events(events.clone());
    println!("\nrefines the ATOMIZED implementation? {report}");
    assert!(report.passed());

    // ...and against the separate abstract specification (Fig. 1). The
    // §4.4 decomposition: implementation ⊑ atomized version ⊑ abstract
    // spec; both checks pass on the same trace.
    let report = Checker::io(MultisetSpec::new()).check_events(events);
    println!("refines the ABSTRACT specification? {report}");
    assert!(report.passed());

    println!(
        "\nboth hold — the atomized implementation is a valid stand-in \
         specification ✔"
    );
}
