//! The fault matrix: sharded verification under injected faults.
//!
//! A runtime checker is only trustworthy if it keeps telling the truth
//! while parts of it misbehave. This walkthrough crosses every sharded
//! scenario with the fault grid — checker panics (restarted and
//! exhausted), overload sheds, routing drops, refused worker spawns, and
//! torn log tails — and shows that every cell ends in a verdict or an
//! *explicitly degraded* report: no hangs, no aborts, no clean pass that
//! silently skipped coverage.
//!
//! The grid is deterministic per seed. Replay a cell exactly with
//! `VYRD_FAULT_SEED=<seed> cargo run --example fault_matrix`.
//!
//! (The panic messages interleaved with the table are expected: they are
//! the injected checker panics being caught and supervised.)

use std::sync::mpsc;
use std::time::Duration;

use vyrd::harness::fault_matrix::run_matrix;
use vyrd::rt::fault;

/// Generous ceiling for the whole grid; a hung cell is itself a bug the
/// matrix exists to catch, so trip a watchdog instead of hanging CI.
const WATCHDOG: Duration = Duration::from_secs(180);

fn main() {
    let seed = fault::seed_from_env();
    println!("fault matrix (seed {seed}, set {} to replay)\n", fault::SEED_ENV);

    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(run_matrix(seed));
    });
    let outcomes = match rx.recv_timeout(WATCHDOG) {
        Ok(outcomes) => outcomes,
        Err(_) => {
            eprintln!("fault matrix hung: no verdict within {WATCHDOG:?}");
            std::process::exit(2);
        }
    };

    let mut failures = 0;
    for outcome in &outcomes {
        println!("{outcome}");
        if !outcome.passed() {
            failures += 1;
        }
    }
    println!("\n{} cells, {failures} failed", outcomes.len());
    if failures > 0 {
        std::process::exit(1);
    }
}
