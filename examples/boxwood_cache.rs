//! The real Boxwood Cache bug (§7.2.2), end to end.
//!
//! One thread overwrites a dirty cache entry in place (Fig. 8's WRITE
//! path 3, whose `COPY-TO-CACHE` the buggy variant leaves unprotected by
//! `LOCK(clean)`); a concurrent `FLUSH` reads the entry mid-copy and
//! persists a buffer that is "partly old and partly new" to the Chunk
//! Manager — then marks the entry clean.
//!
//! View refinement detects this immediately through the §7.2.1 invariant
//! "a clean cache entry must equal its chunk". I/O refinement only sees
//! it after the corrupted entry is evicted (without write-back — it is
//! believed clean!) and a later READ returns the torn bytes.
//!
//! Run with: `cargo run --example boxwood_cache`

use vyrd::core::checker::Checker;
use vyrd::core::log::{EventLog, LogMode};
use vyrd::storage::{
    clean_matches_chunk, entry_in_exactly_one_list, BoxCache, CacheReplayer, CacheVariant,
    ChunkManager, StoreSpec,
};

fn check_view(events: Vec<vyrd::core::Event>) -> vyrd::core::Report {
    Checker::view(StoreSpec::new(), CacheReplayer::new())
        .with_invariant(clean_matches_chunk())
        .with_invariant(entry_in_exactly_one_list())
        .check_events(events)
}

fn main() {
    for attempt in 1..=500 {
        let log = EventLog::in_memory(LogMode::View);
        let cache = BoxCache::new(ChunkManager::new(), CacheVariant::Buggy, log.clone());

        // Make handle 1 dirty so subsequent writes take path 3.
        cache.handle().write(1, vec![0u8; 64]);

        // A single write racing a single flush: if the flush catches the
        // copy mid-flight, the torn buffer reaches the chunk manager and
        // the entry is marked clean — with no later write to heal it
        // before the eviction below (the paper's exact scenario).
        let writer = {
            let cache = cache.clone();
            std::thread::spawn(move || {
                let h = cache.handle();
                h.write(1, vec![7; 64]);
            })
        };
        let flusher = {
            let cache = cache.clone();
            std::thread::spawn(move || {
                let h = cache.handle();
                h.flush();
            })
        };
        writer.join().expect("writer");
        flusher.join().expect("flusher");

        let view_report = check_view(log.snapshot());
        if let Some(violation) = view_report.violation {
            println!("race manifested on attempt {attempt}");
            println!("\nview refinement verdict:\n  {violation}");

            let stored = cache.chunk_manager().read(1).expect("chunk exists").data;
            let uniform = stored.windows(2).all(|w| w[0] == w[1]);
            println!(
                "\nchunk manager now holds {} ({} bytes): {:?}...",
                if uniform { "a complete buffer" } else { "a TORN buffer" },
                stored.len(),
                &stored[..8.min(stored.len())]
            );

            // The paper's I/O-visible continuation: evict the
            // believed-clean entry and read the handle back.
            let h = cache.handle();
            h.revoke(1);
            let read_back = h.read(1);
            println!(
                "after eviction, READ(1) returned {} bytes",
                read_back.as_bytes().map(<[u8]>::len).unwrap_or(0)
            );
            let io_report = Checker::io(StoreSpec::new()).check_events(log.snapshot());
            println!("I/O refinement after eviction + read: {io_report}");
            return;
        }
    }
    println!("the cache race did not manifest in 500 attempts — try again");
}
