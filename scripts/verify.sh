#!/usr/bin/env bash
# Tier-1 verification for the VYRD reproduction workspace.
#
# The workspace is std-only and must build with zero network access, so
# everything here runs with --offline. Exits non-zero on the first
# failure.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test -q --offline"
cargo test --workspace -q --offline

# Smoke-run every example: each is a runnable walkthrough that must
# exit 0 (the violation demos report their detection and succeed).
echo "==> example smoke runs"
cargo build --release --offline --examples
for ex in examples/*.rs; do
    name="$(basename "$ex" .rs)"
    echo "    -> $name"
    cargo run --release --offline -q --example "$name" >/dev/null
done

# Fault-matrix smoke: the full grid of injected faults over every
# sharded scenario, under a pinned seed so any failure replays exactly
# (the example's watchdog turns a hang into a non-zero exit). The
# example loop above already ran it at seed 0; this pins a second seed.
echo "==> fault-matrix smoke (VYRD_FAULT_SEED=3405691582)"
VYRD_FAULT_SEED=3405691582 \
    cargo run --release --offline -q --example fault_matrix >/dev/null

# Fast-path agreement: the batched per-thread logging pipeline must
# reproduce the single-lock reference order event-for-event, including
# under injected append drops — pinned to the same seed as the fault
# matrix so a disagreement replays exactly.
echo "==> append agreement (VYRD_FAULT_SEED=3405691582)"
VYRD_FAULT_SEED=3405691582 \
    cargo test --release --offline -q --test append_agreement >/dev/null

# Lock-free linearizability agreement: the K=4 sharded Lin pool must
# agree event-for-event with the offline per-object reference on both
# lock-free scenarios (correct PASS, buggy FAIL on the prologue shard,
# injected drops degrade-never-forge), pinned to the same replayable
# seed as the fault matrix.
echo "==> lock-free lin agreement (VYRD_FAULT_SEED=3405691582)"
VYRD_FAULT_SEED=3405691582 \
    cargo test --release --offline -q --test lin_agreement >/dev/null

# Consume-path agreement: the batched router+pool pipeline must return
# the same verdict as the per-event baseline on every scenario family
# (Correct and Buggy, 1 and 4 workers), and injected route drops must
# stamp the identical degradation ledger across batch boundaries —
# pinned to the fault matrix's seed so a divergence replays exactly.
echo "==> consume agreement (VYRD_FAULT_SEED=3405691582)"
VYRD_FAULT_SEED=3405691582 \
    cargo test --release --offline -q --test consume_agreement >/dev/null

# Allocation-flat decode: steady-state framed replay must never touch
# the heap (counting global allocator; own binary, see the test header).
echo "==> decode no-alloc"
cargo test --release --offline -q --test decode_no_alloc >/dev/null

# Bench smoke: the append-throughput microbenchmark must run to
# completion and write its JSON into results/, the canonical artifact
# directory (numbers are not gated here — the container's core count
# makes them environment-dependent).
echo "==> append_throughput bench smoke"
cargo bench --offline -p vyrd-bench --bench append_throughput >/dev/null 2>&1
test -f results/BENCH_append_throughput.json

# Lin-vs-Io checking cost on the same recorded lock-free traces; the
# artifact (events/s per mode) feeds the EXPERIMENTS.md overhead row.
echo "==> lin_check bench smoke"
cargo bench --offline -p vyrd-bench --bench lin_check >/dev/null 2>&1
test -f results/BENCH_lin_check.json

# Consume-path regression gate: the batched delivery discipline checked
# against the per-event baseline on the same recorded traces. The bench
# itself exits non-zero if the batched path is >10% slower than the
# baseline on any scenario (it should be an order of magnitude faster).
echo "==> check_throughput --smoke gate"
cargo bench --offline -p vyrd-bench --bench check_throughput -- --smoke >/dev/null 2>&1
test -f results/BENCH_check_throughput.json

# Metrics export + reconciliation: the stats binary runs a live sharded
# scenario with metrics and spans on, then replays the pinned-seed fault
# matrix and exits non-zero unless every metric agrees exactly with the
# Degradation ledger and log stats (lag >= 0 is among its own checks).
echo "==> metrics export + fault-matrix reconciliation (stats)"
VYRD_FAULT_SEED=3405691582 \
    cargo run --release --offline -q -p vyrd-bench --bin stats >/dev/null
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF'
import json
for name in ("results/METRICS_smoke.json", "results/METRICS_fault_matrix.json"):
    with open(name) as f:
        doc = json.load(f)
    assert doc, f"{name} is empty"
matrix = json.load(open("results/METRICS_fault_matrix.json"))
assert matrix["all_agree"] is True, "fault-matrix metrics disagree with ledger"
print("    -> METRICS JSON artifacts parse; all cells agree")
EOF
else
    test -s results/METRICS_smoke.json
    test -s results/METRICS_fault_matrix.json
fi

# Continuous-service kill/resume smoke: run the segmented producer with
# its polling verifier under the pinned seed, SIGKILL it mid-stream once
# at least two checkpoints are durable and a checked segment has been
# physically deleted, then resume in a fresh process. The resumed run
# must PASS, must start from a checkpoint (resume_seq > 0), and its
# segment accounting must reconcile exactly: every sealed segment
# present at resume is deleted, and at most the unsealed tail file
# (kept as crash evidence) survives.
echo "==> continuous kill/resume smoke (VYRD_FAULT_SEED=3405691582)"
SEG_DIR="${TMPDIR:-/tmp}/vyrd-segment-smoke.$$"
SEG_LOG="$SEG_DIR.produce.log"
rm -rf "$SEG_DIR" "$SEG_LOG"
VYRD_FAULT_SEED=3405691582 \
    target/release/continuous produce --dir "$SEG_DIR" --seed 3405691582 \
    --calls 12000 --segment-bytes 4096 >"$SEG_LOG" &
SEG_PID=$!
seg_gate() {
    awk '
        /^progress/ {
            cp = del = ns = 0
            for (i = 1; i <= NF; i++)
                if (split($i, kv, "=") == 2) {
                    if (kv[1] == "checkpoints") cp = kv[2] + 0
                    if (kv[1] == "deleted")     del = kv[2] + 0
                    if (kv[1] == "next_seq")    ns = kv[2] + 0
                }
            if (cp >= 2 && del >= 1 && ns > 0) { hit = 1; exit }
        }
        END { exit hit ? 0 : 1 }
    ' "$SEG_LOG"
}
seg_gate_hit=0
while kill -0 "$SEG_PID" 2>/dev/null; do
    if seg_gate; then
        seg_gate_hit=1
        break
    fi
    sleep 0.02
done
if [ "$seg_gate_hit" -ne 1 ]; then
    echo "    !! produce finished before the kill gate fired" >&2
    cat "$SEG_LOG" >&2
    exit 1
fi
kill -9 "$SEG_PID" 2>/dev/null || true
wait "$SEG_PID" 2>/dev/null || true
# The durable state the kill left behind: a manifest, at least one
# checkpoint, and the segments the checkpoints do not yet cover.
test -f "$SEG_DIR/manifest.log"
ls "$SEG_DIR"/checkpoint-*.vyc >/dev/null
SEG_LIVE_AT_RESUME="$(ls "$SEG_DIR"/seg-*.vyl 2>/dev/null | wc -l | tr -d ' ')"
VYRD_FAULT_SEED=3405691582 \
    target/release/continuous resume --dir "$SEG_DIR" --seed 3405691582 \
    --json results/SEGMENT_smoke.json >"$SEG_DIR.resume.log"
grep -q '^final passed=true' "$SEG_DIR.resume.log"
if command -v python3 >/dev/null 2>&1; then
    SEG_LIVE_AT_RESUME="$SEG_LIVE_AT_RESUME" python3 - <<'EOF'
import json, os
doc = json.load(open("results/SEGMENT_smoke.json"))
at_resume = int(os.environ["SEG_LIVE_AT_RESUME"])
assert doc["passed"] is True, doc
assert doc["resume_seq"] > 0, f"did not resume from a checkpoint: {doc}"
assert doc["events_checked_after_resume"] >= doc["resume_seq"], doc
assert doc["checkpoints_written"] >= 1, doc
assert doc["live_segments"] <= 1, f"disk not reclaimed: {doc}"
assert doc["segments_deleted"] + doc["live_segments"] == at_resume, (
    f"segment accounting does not reconcile: {at_resume} present at "
    f"resume vs {doc}"
)
print("    -> resumed PASS from seq", doc["resume_seq"],
      "| segments reconciled:", doc["segments_deleted"], "deleted +",
      doc["live_segments"], "live =", at_resume)
EOF
else
    test -s results/SEGMENT_smoke.json
fi
rm -rf "$SEG_DIR" "$SEG_LOG" "$SEG_DIR.resume.log"

# Open-loop soak smoke: drive an arrival-rate workload well past the
# verifier's saturation point under the pinned seed, with the adaptive
# overload controller on. The binary itself exits non-zero unless the
# run converges to a bounded-lag DEGRADED PASS with exact shed/stranded
# accounting (appended == routed + shed, routed == checked + stranded,
# ledger == metrics) on the correct leg, and the buggy leg still FAILs
# on a pre-gap violation — overload must never forge a verdict either
# way.
echo "==> open-loop soak smoke (seed 3405691582)"
target/release/soak --smoke --seed 3405691582 >/dev/null
test -s results/SOAK_smoke.json
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF'
import json
doc = json.load(open("results/SOAK_smoke.json"))
assert doc["ok"] is True, "soak smoke did not reconcile"
legs = {leg["variant"]: leg for leg in doc["legs"]}
correct, buggy = legs["Correct"], legs["Buggy"]
assert correct["verdict"] == "DEGRADED PASS", correct
assert correct["reconciled"] is True, correct
assert correct["shed"] > 0, "smoke never saturated"
assert buggy["verdict"] == "FAIL", buggy
assert buggy["reconciled"] is True, buggy
print("    -> SOAK_smoke.json: correct leg DEGRADED PASS"
      f" ({correct['shed']} sheds, reconciled), buggy leg FAIL")
EOF
fi

# Witness smoke gate: two seeded bugs through the counterexample
# pipeline under the pinned seed. Each run records a multi-thousand-
# event buggy trace, ddmin-minimizes it with the scenario's checker as
# the oracle, and writes results/WITNESS_<scenario>.json. The binary
# exits non-zero if the violation category drifts during minimization,
# if the minimized witness exceeds 50 events, or if the originating log
# was under 2000 events (a trivial trace would make the gate vacuous).
echo "==> witness minimization gate (seed 3405691582)"
target/release/witness --scenario Vector --kind view --seed 3405691582 \
    --max-events 50 --min-log 2000 >/dev/null
target/release/witness --scenario Treiber-Stack --kind lin --seed 3405691582 \
    --max-events 50 --min-log 2000 >/dev/null
test -s results/WITNESS_Vector.json
test -s results/WITNESS_Treiber-Stack.json
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF'
import json
for name, category in (
    ("results/WITNESS_Vector.json", "observer-unjustified"),
    ("results/WITNESS_Treiber-Stack.json", "spec-rejected-commit"),
):
    doc = json.load(open(name))
    assert doc["category"] == category, f"{name}: category drifted: {doc['category']}"
    assert 0 < len(doc["events"]) <= 50, f"{name}: witness not minimized"
    assert doc["original_events"] >= 2000, f"{name}: trivial originating trace"
    assert doc["oracle_runs"] >= 1, f"{name}: no ddmin cost reported"
    print(f"    -> {name}: {doc['original_events']} events ->",
          f"{len(doc['events'])} ({doc['oracle_runs']} oracle runs)")
EOF
fi

# Clippy is optional tooling: run it when the component is installed,
# skip quietly when not (the container may ship a bare toolchain).
# Note: crates/core's pipeline modules (log/shard/pool/online/codec/
# violation) carry `#![deny(clippy::unwrap_used, clippy::expect_used)]`
# inner attributes, so this run also gates panicking escape hatches out
# of the degrade-gracefully paths.
if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --offline"
    # result_large_err fires on the checker's pre-existing Report-sized
    # error variants; waived until that type is boxed. redundant_clone
    # is opted *in* (it is off by default): the consume-path overhaul
    # stripped the checker/decode hot paths of defensive clones, and
    # this keeps them from creeping back.
    cargo clippy --workspace --all-targets --offline -- \
        -D warnings -W clippy::redundant_clone -A clippy::result_large_err
else
    echo "==> clippy not installed; skipping"
fi

echo "==> OK"
