#!/usr/bin/env bash
# Tier-1 verification for the VYRD reproduction workspace.
#
# The workspace is std-only and must build with zero network access, so
# everything here runs with --offline. Exits non-zero on the first
# failure.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test -q --offline"
cargo test --workspace -q --offline

# Smoke-run every example: each is a runnable walkthrough that must
# exit 0 (the violation demos report their detection and succeed).
echo "==> example smoke runs"
cargo build --release --offline --examples
for ex in examples/*.rs; do
    name="$(basename "$ex" .rs)"
    echo "    -> $name"
    cargo run --release --offline -q --example "$name" >/dev/null
done

# Fault-matrix smoke: the full grid of injected faults over every
# sharded scenario, under a pinned seed so any failure replays exactly
# (the example's watchdog turns a hang into a non-zero exit). The
# example loop above already ran it at seed 0; this pins a second seed.
echo "==> fault-matrix smoke (VYRD_FAULT_SEED=3405691582)"
VYRD_FAULT_SEED=3405691582 \
    cargo run --release --offline -q --example fault_matrix >/dev/null

# Fast-path agreement: the batched per-thread logging pipeline must
# reproduce the single-lock reference order event-for-event, including
# under injected append drops — pinned to the same seed as the fault
# matrix so a disagreement replays exactly.
echo "==> append agreement (VYRD_FAULT_SEED=3405691582)"
VYRD_FAULT_SEED=3405691582 \
    cargo test --release --offline -q --test append_agreement >/dev/null

# Bench smoke: the append-throughput microbenchmark must run to
# completion and write its JSON into results/, the canonical artifact
# directory (numbers are not gated here — the container's core count
# makes them environment-dependent).
echo "==> append_throughput bench smoke"
cargo bench --offline -p vyrd-bench --bench append_throughput >/dev/null 2>&1
test -f results/BENCH_append_throughput.json

# Metrics export + reconciliation: the stats binary runs a live sharded
# scenario with metrics and spans on, then replays the pinned-seed fault
# matrix and exits non-zero unless every metric agrees exactly with the
# Degradation ledger and log stats (lag >= 0 is among its own checks).
echo "==> metrics export + fault-matrix reconciliation (stats)"
VYRD_FAULT_SEED=3405691582 \
    cargo run --release --offline -q -p vyrd-bench --bin stats >/dev/null
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF'
import json
for name in ("results/METRICS_smoke.json", "results/METRICS_fault_matrix.json"):
    with open(name) as f:
        doc = json.load(f)
    assert doc, f"{name} is empty"
matrix = json.load(open("results/METRICS_fault_matrix.json"))
assert matrix["all_agree"] is True, "fault-matrix metrics disagree with ledger"
print("    -> METRICS JSON artifacts parse; all cells agree")
EOF
else
    test -s results/METRICS_smoke.json
    test -s results/METRICS_fault_matrix.json
fi

# Clippy is optional tooling: run it when the component is installed,
# skip quietly when not (the container may ship a bare toolchain).
# Note: crates/core's pipeline modules (log/shard/pool/online/codec/
# violation) carry `#![deny(clippy::unwrap_used, clippy::expect_used)]`
# inner attributes, so this run also gates panicking escape hatches out
# of the degrade-gracefully paths.
if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --offline"
    # result_large_err fires on the checker's pre-existing Report-sized
    # error variants; waived until that type is boxed.
    cargo clippy --workspace --all-targets --offline -- \
        -D warnings -A clippy::result_large_err
else
    echo "==> clippy not installed; skipping"
fi

echo "==> OK"
