//! # vyrd — runtime refinement-violation detection
//!
//! Facade crate for the Rust reproduction of *"VYRD: VerifYing Concurrent
//! Programs by Runtime Refinement-Violation Detection"* (Elmas, Tasiran,
//! Qadeer — PLDI 2005). It re-exports the whole workspace:
//!
//! * [`core`] — the checker engine: event log, codec, [`core::spec::Spec`]
//!   trait, I/O- and view-refinement checkers, online verification thread;
//! * [`multiset`] — the paper's running example (§2): array / vector / BST
//!   multisets with their injected bugs;
//! * [`javalib`] — the `java.util.Vector` / `StringBuffer` benchmarks;
//! * [`storage`] — the Boxwood ChunkManager + Cache stack (Fig. 8);
//! * [`blinktree`] — the Boxwood B-link tree (Fig. 9);
//! * [`lockfree`] — the atomics-based family (Treiber stack,
//!   Michael–Scott queue) whose commit points are successful CASes,
//!   exercised by the linearizability checking mode (`Checker::lin`);
//! * [`harness`] — the §7.1 workload harness and the Tables 1–3 drivers;
//! * [`rt`] — the in-tree, `std`-only concurrency & measurement substrate
//!   (MPSC channel, poison-free locks, seedable PRNG, benchmark runner)
//!   that keeps the whole workspace dependency-free.
//!
//! See the `examples/` directory for runnable walkthroughs:
//!
//! * `quickstart` — instrument, log, and check the multiset end to end;
//! * `multiset_violation` — the Fig. 5/6 buggy `FindSlot` detection;
//! * `boxwood_cache` — the real §7.2.2 cache bug, caught by invariant (i);
//! * `blinktree_debugging` — the B-link tree under load with compression;
//! * `atomized_spec` — using the atomized implementation as the
//!   specification (§4.4);
//! * `online_verification` — the live verification thread (§4.2)
//!   catching the BST lost-insert bug as it happens.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use vyrd_blinktree as blinktree;
pub use vyrd_core as core;
pub use vyrd_harness as harness;
pub use vyrd_javalib as javalib;
pub use vyrd_lockfree as lockfree;
pub use vyrd_multiset as multiset;
pub use vyrd_rt as rt;
pub use vyrd_storage as storage;
